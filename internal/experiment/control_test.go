package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"smartoclock/internal/api"
)

// liveCreds is the four-scope token matrix the conformance battery draws
// from, plus a credential that expired long before the tests run.
const liveCreds = "reader:tok-read:read;" +
	"operator:tok-operate:operate;" +
	"admin:tok-admin:admin;" +
	"chaosbot:tok-chaos:chaos;" +
	"expired:tok-expired:read+operate+admin+chaos:2020-01-01T00:00:00Z"

// wrongTokenFor returns a live token that lacks the given scope.
func wrongTokenFor(s api.Scope) string {
	if s == api.ScopeOperate {
		return "tok-admin"
	}
	return "tok-operate"
}

// liveHarness owns one hold-mode live cluster run with the control-plane
// API served over a real HTTP listener.
type liveHarness struct {
	url  string
	ctrl *LiveController
	done chan struct{}
	res  *LiveResult
	err  error
}

// startLiveHarness boots a held live cluster under the authenticated API.
// The run only ticks when a test advances it, so every assertion sees a
// deterministic world.
func startLiveHarness(t *testing.T, mutate func(*LiveConfig)) *liveHarness {
	t.Helper()
	ctrl := NewLiveController()
	cfg := DefaultLiveConfig()
	cfg.Pace = 0
	cfg.Duration = 2 * time.Hour
	cfg.Control = ctrl
	cfg.Hold = true
	if mutate != nil {
		mutate(&cfg)
	}
	handler, err := api.Config{Tokens: liveCreds}.Build(ctrl) // Rate 0: no limiter in tests
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)

	h := &liveHarness{url: ts.URL, ctrl: ctrl, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.res, h.err = RunLive(cfg, nil)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = h.client("tok-admin").Shutdown(ctx)
		select {
		case <-h.done:
		case <-time.After(30 * time.Second):
			t.Error("live run did not stop")
		}
	})
	return h
}

func (h *liveHarness) client(token string) *api.Client { return api.NewClient(h.url, token) }

// stop shuts the run down and returns its result.
func (h *liveHarness) stop(t *testing.T) *LiveResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.client("tok-admin").Shutdown(ctx); err != nil {
		var re *api.RemoteError
		// A second Shutdown (from Cleanup) racing the first may see the run
		// already gone; anything else is a real failure.
		if !errors.As(err, &re) || re.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("shutdown: %v", err)
		}
	}
	select {
	case <-h.done:
	case <-time.After(30 * time.Second):
		t.Fatal("live run did not stop after Shutdown")
	}
	if h.err != nil {
		t.Fatalf("RunLive: %v", h.err)
	}
	return h.res
}

func statusOf(t *testing.T, c *api.Client) *api.ClusterStatus {
	t.Helper()
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	return st
}

func serverStatus(t *testing.T, st *api.ClusterStatus, name string) *api.ServerStatus {
	t.Helper()
	for i := range st.Servers {
		if st.Servers[i].Name == name {
			return &st.Servers[i]
		}
	}
	t.Fatalf("server %s missing from status (%d servers)", name, len(st.Servers))
	return nil
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLiveConformance is the BDD battery of the acceptance criteria: every
// mutating endpoint crossed with the four-token auth matrix against a real
// held cluster, asserting both the HTTP status and the resulting cluster
// state. Denied calls must leave the world byte-identical; the valid call
// must produce its documented effect.
func TestLiveConformance(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "state.json")
	h := startLiveHarness(t, func(cfg *LiveConfig) {
		cfg.CheckpointPath = ckptPath
		cfg.CheckpointEvery = time.Minute
	})
	ctx := context.Background()
	reader := h.client("tok-read")

	// Given: each scenario says how to invoke its endpoint through a client
	// holding an arbitrary token, and how the world must change when — and
	// only when — the call is authorized.
	scenarios := []struct {
		cmd  string
		call func(c *api.Client) error
		then func(t *testing.T, before, after *api.ClusterStatus)
	}{
		{api.CmdDeploy, func(c *api.Client) error {
			_, err := c.RegisterDeployment(ctx, api.DeploymentSpec{Name: "web", Server: "lv-00", Cores: 2, Util: 0.5})
			return err
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if n := len(serverStatus(t, before, "lv-00").Deployments); n != 0 {
				t.Fatalf("deployments before = %d", n)
			}
			deps := serverStatus(t, after, "lv-00").Deployments
			if len(deps) != 1 || deps[0].Name != "web" || len(deps[0].Cores) != 2 {
				t.Fatalf("deployments after = %+v", deps)
			}
		}},
		{api.CmdProfile, func(c *api.Client) error {
			return c.SetProfile(ctx, api.ProfileSpec{Server: "lv-00", MedianWatts: 220, RequestedCores: 4, GrantedCores: 2})
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if len(before.ProfiledServers) != 0 {
				t.Fatalf("profiles before = %v", before.ProfiledServers)
			}
			if len(after.ProfiledServers) != 1 || after.ProfiledServers[0] != "lv-00" {
				t.Fatalf("profiles after = %v", after.ProfiledServers)
			}
		}},
		{api.CmdBudget, func(c *api.Client) error {
			return c.SetBudget(ctx, api.BudgetSpec{Server: "lv-01", Watts: 500})
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if b := serverStatus(t, after, "lv-01").BudgetWatts; b != 500 {
				t.Fatalf("budget after = %g, want 500", b)
			}
		}},
		{api.CmdAssign, func(c *api.Client) error {
			_, err := c.AssignBudgets(ctx, api.AssignSpec{})
			return err
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			// Only lv-00 is profiled, so only it gets an assigned template:
			// the gOA hands the single profiled server the full rack limit.
			if b := serverStatus(t, after, "lv-00").BudgetWatts; b <= 0 {
				t.Fatalf("assigned budget = %g", b)
			}
		}},
		{api.CmdSeverity, func(c *api.Client) error {
			return c.SetSeverity(ctx, api.SeveritySpec{Server: "lv-02", Severity: 3})
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if s := serverStatus(t, before, "lv-02"); s.Severity == 3 {
				t.Fatal("severity already 3 before the call")
			}
			if s := serverStatus(t, after, "lv-02"); s.Severity != 3 || s.SeverityName == "" {
				t.Fatalf("severity after = %+v", s)
			}
		}},
		{api.CmdOCStart, func(c *api.Client) error {
			st, err := c.StartOverclock(ctx, api.OCSpec{Server: "lv-00", VM: "web"})
			if err == nil && !st.Granted {
				return fmt.Errorf("overclock denied: %s", st.Reason)
			}
			return err
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if n := len(serverStatus(t, before, "lv-00").Sessions); n != 0 {
				t.Fatalf("sessions before = %d", n)
			}
			sess := serverStatus(t, after, "lv-00").Sessions
			if len(sess) != 1 || sess[0].VM != "web" || len(sess[0].Cores) != 2 {
				t.Fatalf("sessions after = %+v", sess)
			}
		}},
		{api.CmdOCStop, func(c *api.Client) error {
			return c.StopOverclock(ctx, api.StopSpec{Server: "lv-00", VM: "web"})
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if n := len(serverStatus(t, after, "lv-00").Sessions); n != 0 {
				t.Fatalf("sessions after stop = %d", n)
			}
		}},
		{api.CmdChaos, func(c *api.Client) error {
			_, err := c.SetChaos(ctx, api.ChaosSpec{Agent: "lv-01", Down: true})
			return err
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if len(before.ChaosDown) != 0 {
				t.Fatalf("chaos before = %v", before.ChaosDown)
			}
			if len(after.ChaosDown) != 1 || after.ChaosDown[0] != "soa/lv-01" {
				t.Fatalf("chaos after = %v (bare server name should normalize)", after.ChaosDown)
			}
		}},
		{api.CmdCheckpoint, func(c *api.Client) error {
			_, err := c.ForceCheckpoint(ctx)
			return err
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if after.Checkpoint.Writes != before.Checkpoint.Writes+1 {
				t.Fatalf("checkpoint writes %d -> %d", before.Checkpoint.Writes, after.Checkpoint.Writes)
			}
			if _, err := os.Stat(ckptPath); err != nil {
				t.Fatalf("forced checkpoint file: %v", err)
			}
		}},
		{api.CmdAdvance, func(c *api.Client) error {
			_, err := c.Advance(ctx, api.AdvanceSpec{Ticks: 3})
			return err
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if after.Ticks != before.Ticks+3 {
				t.Fatalf("ticks %d -> %d, want +3", before.Ticks, after.Ticks)
			}
			if want := before.Now.Add(3 * 5 * time.Second); !after.Now.Equal(want) {
				t.Fatalf("now %v -> %v, want %v", before.Now, after.Now, want)
			}
		}},
		{api.CmdDrain, func(c *api.Client) error {
			return c.DrainDeployment(ctx, "web")
		}, func(t *testing.T, before, after *api.ClusterStatus) {
			if n := len(serverStatus(t, after, "lv-00").Deployments); n != 0 {
				t.Fatalf("deployments after drain = %d", n)
			}
		}},
	}

	for _, sc := range scenarios {
		rt, ok := api.RouteFor(sc.cmd)
		if !ok {
			t.Fatalf("no route for %s", sc.cmd)
		}
		// When an unauthorized caller tries it, then the request is refused
		// with the documented status and the world does not move.
		denied := []struct {
			name   string
			token  string
			status int
		}{
			{"wrong-scope", wrongTokenFor(rt.Scope), http.StatusForbidden},
			{"expired", "tok-expired", http.StatusUnauthorized},
			{"no-token", "", http.StatusUnauthorized},
		}
		for _, d := range denied {
			t.Run(sc.cmd+"/"+d.name, func(t *testing.T) {
				before := statusOf(t, reader)
				err := sc.call(h.client(d.token))
				var re *api.RemoteError
				if !errors.As(err, &re) || re.StatusCode != d.status {
					t.Fatalf("err = %v, want HTTP %d", err, d.status)
				}
				after := statusOf(t, reader)
				if b, a := mustJSON(t, before), mustJSON(t, after); !bytes.Equal(b, a) {
					t.Fatalf("denied call mutated the cluster:\nbefore %s\nafter  %s", b, a)
				}
			})
		}
		// When an authorized caller does it, then the effect is observable.
		t.Run(sc.cmd+"/valid", func(t *testing.T) {
			before := statusOf(t, reader)
			if err := sc.call(h.client("tok-"+string(rt.Scope))); err != nil {
				t.Fatalf("authorized call failed: %v", err)
			}
			sc.then(t, before, statusOf(t, reader))
		})
	}

	// Shutdown is its own final scenario: denied first, then for real.
	for _, d := range []struct {
		token  string
		status int
	}{{wrongTokenFor(api.ScopeAdmin), http.StatusForbidden}, {"tok-expired", http.StatusUnauthorized}, {"", http.StatusUnauthorized}} {
		err := h.client(d.token).Shutdown(ctx)
		var re *api.RemoteError
		if !errors.As(err, &re) || re.StatusCode != d.status {
			t.Fatalf("denied shutdown err = %v, want HTTP %d", err, d.status)
		}
	}
	res := h.stop(t)
	if res.Violations != 0 {
		t.Fatalf("invariant violations = %d", res.Violations)
	}
	if res.Ticks != 3 {
		t.Fatalf("ticks = %d, want exactly the 3 advanced", res.Ticks)
	}
}

// TestLiveServiceErrors covers the typed rejections of the driven adapter:
// conflicts, not-founds and unavailables must come back as their mapped
// HTTP statuses against a real cluster.
func TestLiveServiceErrors(t *testing.T) {
	h := startLiveHarness(t, nil) // no checkpoint path configured
	ctx := context.Background()
	op := h.client("tok-operate")
	admin := h.client("tok-admin")

	wantStatus := func(err error, status int, what string) {
		t.Helper()
		var re *api.RemoteError
		if !errors.As(err, &re) || re.StatusCode != status {
			t.Fatalf("%s err = %v, want HTTP %d", what, err, status)
		}
	}

	if _, err := op.RegisterDeployment(ctx, api.DeploymentSpec{Name: "dup", Server: "lv-00", Cores: 2, Util: 0.4}); err != nil {
		t.Fatal(err)
	}
	_, err := op.RegisterDeployment(ctx, api.DeploymentSpec{Name: "dup", Server: "lv-01", Cores: 2, Util: 0.4})
	wantStatus(err, http.StatusConflict, "duplicate deployment")

	_, err = op.RegisterDeployment(ctx, api.DeploymentSpec{Name: "ghost", Server: "lv-99", Cores: 2, Util: 0.4})
	wantStatus(err, http.StatusNotFound, "unknown server")

	_, err = op.RegisterDeployment(ctx, api.DeploymentSpec{Name: "huge", Server: "lv-00", Cores: 10000, Util: 0.4})
	wantStatus(err, http.StatusConflict, "over-allocating deployment")

	wantStatus(op.DrainDeployment(ctx, "nobody"), http.StatusNotFound, "draining a stranger")
	wantStatus(op.StopOverclock(ctx, api.StopSpec{Server: "lv-00", VM: "dup"}), http.StatusNotFound, "stopping a non-session")

	_, err = h.client("tok-chaos").SetChaos(ctx, api.ChaosSpec{Agent: "soa/lv-99", Down: true})
	wantStatus(err, http.StatusNotFound, "chaos on unknown agent")

	_, err = op.AssignBudgets(ctx, api.AssignSpec{})
	wantStatus(err, http.StatusServiceUnavailable, "assign with no profiles")

	_, err = admin.ForceCheckpoint(ctx)
	wantStatus(err, http.StatusServiceUnavailable, "checkpoint without a path")

	// The reserved VM name and malformed specs die in validation.
	_, err = op.RegisterDeployment(ctx, api.DeploymentSpec{Name: "vm", Server: "lv-00", Cores: 1, Util: 0.4})
	wantStatus(err, http.StatusBadRequest, "reserved deployment name")

	if res := h.stop(t); res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
}

// TestAdvanceRequiresHold pins the free-running mode contract: advance is a
// hold-mode verb and conflicts otherwise, while other mutations still work.
func TestAdvanceRequiresHold(t *testing.T) {
	ctrl := NewLiveController()
	cfg := DefaultLiveConfig()
	cfg.Pace = time.Millisecond
	cfg.Duration = 10 * time.Minute
	cfg.Control = ctrl
	handler, err := api.Config{Tokens: liveCreds}.Build(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	done := make(chan error, 1)
	go func() {
		_, err := RunLive(cfg, nil)
		done <- err
	}()

	ctx := context.Background()
	admin := api.NewClient(ts.URL, "tok-admin")
	_, aerr := admin.Advance(ctx, api.AdvanceSpec{Ticks: 1})
	var re *api.RemoteError
	if !errors.As(aerr, &re) || re.StatusCode != http.StatusConflict {
		t.Fatalf("advance in free-run err = %v, want 409", aerr)
	}
	if err := api.NewClient(ts.URL, "tok-operate").SetSeverity(ctx, api.SeveritySpec{Server: "lv-00", Severity: 1}); err != nil {
		t.Fatalf("severity in free-run: %v", err)
	}
	if err := admin.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("free-running live run did not stop")
	}
}

// TestHoldRequiresController pins config validation.
func TestHoldRequiresController(t *testing.T) {
	cfg := DefaultLiveConfig()
	cfg.Hold = true
	if _, err := RunLive(cfg, nil); err == nil {
		t.Fatal("hold mode without a controller was accepted")
	}
}

// loadSmokeRun boots a held cluster, mutates it from concurrent clients with
// disjoint per-server targets, advances deterministically, forces a final
// checkpoint, and returns the checkpoint bytes with the run result.
func loadSmokeRun(t *testing.T, seed int64) ([]byte, *api.ClusterStatus, *LiveResult) {
	t.Helper()
	ckptPath := filepath.Join(t.TempDir(), "state.json")
	h := startLiveHarness(t, func(cfg *LiveConfig) {
		cfg.Seed = seed
		cfg.CheckpointPath = ckptPath
		cfg.CheckpointEvery = time.Minute
	})
	ctx := context.Background()
	const workers = 4 // one per server: disjoint targets keep phase A commutative
	const roundsPerWorker = 10

	// Phase A: concurrent mutation storm. Zero ticks elapse (hold mode) and
	// each worker only touches its own server and deployment, so the final
	// world is independent of interleaving.
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := h.client("tok-operate")
			server := fmt.Sprintf("lv-%02d", i)
			dep := fmt.Sprintf("load-%d", i)
			if _, err := c.RegisterDeployment(ctx, api.DeploymentSpec{Name: dep, Server: server, Cores: 2, Util: 0.45}); err != nil {
				errs <- fmt.Errorf("%s deploy: %w", server, err)
				return
			}
			for j := 0; j < roundsPerWorker; j++ {
				if err := c.SetProfile(ctx, api.ProfileSpec{
					Server: server, MedianWatts: 180 + float64(10*i), RequestedCores: 4, GrantedCores: 2,
				}); err != nil {
					errs <- fmt.Errorf("%s profile: %w", server, err)
					return
				}
				if err := c.SetBudget(ctx, api.BudgetSpec{Server: server, Watts: 400 + float64(25*i)}); err != nil {
					errs <- fmt.Errorf("%s budget: %w", server, err)
					return
				}
				if err := c.SetSeverity(ctx, api.SeveritySpec{Server: server, Severity: i % 4}); err != nil {
					errs <- fmt.Errorf("%s severity: %w", server, err)
					return
				}
			}
			st, err := c.StartOverclock(ctx, api.OCSpec{Server: server, VM: dep})
			if err != nil {
				errs <- fmt.Errorf("%s oc: %w", server, err)
				return
			}
			_ = st // admission may deny under the rack limit; the decision itself must be clean
		}()
	}
	// A reader hammers Status throughout the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := h.client("tok-read")
		for j := 0; j < 3*roundsPerWorker; j++ {
			if _, err := c.Status(ctx); err != nil {
				errs <- fmt.Errorf("reader: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase B: deterministic time. 60 ticks of 5 s crosses several profile,
	// budget and checkpoint periods, all under the invariant battery.
	admin := h.client("tok-admin")
	adv, err := admin.Advance(ctx, api.AdvanceSpec{Ticks: 60})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Ticks != 60 {
		t.Fatalf("advanced %d ticks, want 60", adv.Ticks)
	}

	// Phase C: force the final checkpoint and capture the world.
	cp, err := admin.ForceCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cp.Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != cp.Bytes {
		t.Fatalf("checkpoint file %d bytes, status says %d", len(data), cp.Bytes)
	}
	st := statusOf(t, h.client("tok-read"))
	res := h.stop(t)
	return data, st, res
}

// TestControlPlaneLoadSmoke is the load battery of the acceptance criteria:
// concurrent clients mutate a live cluster (run under -race in CI), the
// invariant battery must stay silent, the checkpoint metrics must agree
// with the API's accounting, and two runs of the same seed must land on
// byte-identical final checkpoints.
func TestControlPlaneLoadSmoke(t *testing.T) {
	data1, st1, res1 := loadSmokeRun(t, 7)
	data2, st2, res2 := loadSmokeRun(t, 7)

	if res1.Violations != 0 || res2.Violations != 0 {
		t.Fatalf("invariant violations = %d / %d, want 0", res1.Violations, res2.Violations)
	}
	if st1.Violations != 0 {
		t.Fatalf("status reports %d violations", st1.Violations)
	}

	// Cross-check the checkpoint accounting across all three surfaces:
	// result counter, status endpoint, and the checkpoint_* metrics.
	if res1.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d, want periodic (5 min / 1 min) plus the forced one", res1.Checkpoints)
	}
	if st1.Checkpoint.Writes != res1.Checkpoints {
		t.Fatalf("status writes %d != result checkpoints %d", st1.Checkpoint.Writes, res1.Checkpoints)
	}
	if got := res1.Metrics.SumByName("checkpoint_writes_total"); got != float64(res1.Checkpoints) {
		t.Fatalf("checkpoint_writes_total = %g, result says %d", got, res1.Checkpoints)
	}
	if got := res1.Metrics.SumByName("checkpoint_errors_total"); got != 0 {
		t.Fatalf("checkpoint_errors_total = %g", got)
	}
	if res1.Metrics.SumByName("checkpoint_bytes") == 0 {
		t.Fatal("checkpoint_bytes gauge never set")
	}

	// Determinism: same seed, same concurrent storm (commutative by
	// construction), same ticks — the final durable state must match to the
	// byte.
	if !bytes.Equal(data1, data2) {
		t.Fatalf("checkpoints differ across identical seeds: %d vs %d bytes", len(data1), len(data2))
	}
	if res1.Ticks != res2.Ticks || res1.Ticks != 60 {
		t.Fatalf("ticks = %d / %d, want 60", res1.Ticks, res2.Ticks)
	}
	// The mutation surfaces agree too (modulo wall-clock-free fields).
	if b1, b2 := mustJSON(t, st1.Servers), mustJSON(t, st2.Servers); !bytes.Equal(b1, b2) {
		t.Fatalf("server states differ across identical seeds:\n%s\n%s", b1, b2)
	}
}
