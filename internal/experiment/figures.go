package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/parallel"
	"smartoclock/internal/predict"
	"smartoclock/internal/stats"
	"smartoclock/internal/trace"
	"smartoclock/internal/workload"
)

// figStart is a Monday at midnight, the anchor for all trace-driven
// figures.
var figStart = time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)

// Fig1 reproduces the load pattern of three services on a typical weekday
// (normalized to each service's peak), sampled hourly with 5-minute
// resolution underneath.
func Fig1() *Table {
	services := []trace.ServiceProfile{trace.ServiceA(), trace.ServiceB(), trace.ServiceC()}
	day := figStart.Add(24 * time.Hour) // Tuesday
	tbl := &Table{
		Caption: "Fig 1: Load pattern on a typical weekday (normalized to each service's peak)",
		Headers: []string{"Hour", "ServiceA", "ServiceB", "ServiceC"},
	}
	// Peak per service over the day at 5-minute sampling.
	peaks := make([]float64, len(services))
	for si, svc := range services {
		for m := 0; m < 24*12; m++ {
			u := svc.UtilAt(day.Add(time.Duration(m)*5*time.Minute), nil)
			if u > peaks[si] {
				peaks[si] = u
			}
		}
	}
	for h := 0; h < 24; h++ {
		row := []any{fmt.Sprintf("%02d:00", h)}
		for si, svc := range services {
			// Report the hourly mean: Services B and C peak for ~5 minutes
			// at the top and bottom of each hour, so their mean sits well
			// below 1 while Service A's broad peak saturates it.
			sum := 0.0
			for m := 0; m < 12; m++ {
				sum += svc.UtilAt(day.Add(time.Duration(h)*time.Hour+time.Duration(m)*5*time.Minute), nil)
			}
			row = append(row, sum/12/peaks[si])
		}
		tbl.AddRow(row...)
	}
	return tbl
}

// Fig2And3 reproduces the SocialNet characterization: per-service P99
// latency (Fig 2) and CPU utilization (Fig 3) under three loads in the
// Baseline (1×turbo), Overclock (1×max OC) and ScaleOut (2×turbo)
// environments.
func Fig2And3() (fig2, fig3 *Table) {
	hw := machine.DefaultConfig()
	fig2 = &Table{
		Caption: "Fig 2: SocialNet P99 latency (ms); SLO = 5x unloaded latency; * marks SLO violation",
		Headers: []string{"Service", "Load", "SLOms", "Baseline", "Overclock", "ScaleOut"},
	}
	fig3 = &Table{
		Caption: "Fig 3: SocialNet CPU utilization",
		Headers: []string{"Service", "Load", "Baseline", "Overclock", "ScaleOut"},
	}
	type env struct {
		freq, instances int
	}
	envs := []env{{hw.TurboMHz, 1}, {hw.MaxOCMHz, 1}, {hw.TurboMHz, 2}}
	for _, svc := range workload.SocialNet() {
		for _, level := range workload.Levels() {
			rps := level.RPS(svc, hw.TurboMHz)
			lat := make([]string, len(envs))
			util := make([]any, len(envs))
			for ei, e := range envs {
				d := workload.NewDeployment(svc, e.instances)
				res := d.Step(time.Second, rps, e.freq, hw.TurboMHz, nil)
				mark := ""
				if res.SLOvio {
					mark = "*"
				}
				lat[ei] = fmt.Sprintf("%.2f%s", res.P99MS, mark)
				util[ei] = res.Util
			}
			fig2.AddRow(svc.Name, level.String(), svc.SLOms(), lat[0], lat[1], lat[2])
			fig3.AddRow(append([]any{svc.Name, level.String()}, util...)...)
		}
	}
	return fig2, fig3
}

// Fig4 reproduces the WebConf deployment-level observation: two VMs at 10%
// and 80% load; overclocking the hot VM is unnecessary when the
// deployment-level utilization already meets the target.
func Fig4() *Table {
	hw := machine.DefaultConfig()
	w := workload.NewWebConf(1000)
	lowRPS := w.RPSAtUtil(0.10, hw.TurboMHz, hw.TurboMHz)
	highRPS := w.RPSAtUtil(0.80, hw.TurboMHz, hw.TurboMHz)
	tbl := &Table{
		Caption: "Fig 4: WebConf VM and deployment-level CPU utilization (target 50%)",
		Headers: []string{"Config", "VM1util", "VM2util", "DeploymentUtil", "MeetsTarget"},
	}
	for _, oc := range []bool{false, true} {
		freq := hw.TurboMHz
		name := "Baseline"
		if oc {
			freq = hw.MaxOCMHz
			name = "Overclock-VM2"
		}
		u1 := w.Util(lowRPS, hw.TurboMHz, hw.TurboMHz)
		u2 := w.Util(highRPS, freq, hw.TurboMHz)
		dep := workload.DeploymentUtil([]float64{u1, u2})
		tbl.AddRow(name, u1, u2, dep, dep <= 0.5)
	}
	return tbl
}

// Fig5 reproduces the CDF of average, median and P99 rack power
// utilization across a generated fleet (the paper's 7.1k racks scaled
// down).
func Fig5(racks int, seed int64) (*Table, error) {
	cfg := trace.DefaultFleetConfig(figStart, 14*24*time.Hour)
	cfg.Seed = seed
	cfg.Regions = []string{"Fleet"}
	cfg.RacksPerRegion = racks
	// The broad fleet skews toward lightly loaded racks (§III-Q2: half
	// the racks average below ~66%); the Table I simulation uses an even
	// class mix instead.
	cfg.ClassMix = map[trace.ClusterClass]float64{
		trace.HighPower: 0.2, trace.MediumPower: 0.35, trace.LowPower: 0.45,
	}
	// Stream rack by rack: each worker generates one rack, reduces it to
	// three stats and drops the trace, so figure-scale fleets never hold
	// more than O(workers) racks in memory.
	type rackStats struct {
		a, m, p float64
		err     error
	}
	outs := parallel.Map(cfg.NumRacks(), parallel.Options{Workers: cfg.Workers}, func(i int) rackStats {
		fr, err := trace.GenFleetRack(cfg, i)
		if err != nil {
			return rackStats{err: err}
		}
		a, m, p := fr.UtilizationStats()
		return rackStats{a: a, m: m, p: p}
	})
	var avgs, meds, p99s []float64
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		avgs = append(avgs, o.a)
		meds = append(meds, o.m)
		p99s = append(p99s, o.p)
	}
	tbl := &Table{
		Caption: fmt.Sprintf("Fig 5: CDF of rack power utilization across %d racks", cfg.NumRacks()),
		Headers: []string{"CDF", "Average", "P50", "P99"},
	}
	for _, q := range []float64{10, 25, 50, 75, 90, 99} {
		tbl.AddRow(fmt.Sprintf("p%.0f", q),
			stats.Percentile(avgs, q), stats.Percentile(meds, q), stats.Percentile(p99s, q))
	}
	return tbl, nil
}

// Fig6 reproduces one rack's power over five weekdays, with and without
// naive overclocking, against the rack limit. It returns the table plus
// the fraction of time naive overclocking exceeds the limit (the paper
// reports ~15% on constrained racks).
func Fig6(seed int64) (*Table, float64, error) {
	cfg := trace.DefaultRackGenConfig("fig6", figStart, 7*24*time.Hour)
	cfg.TargetP99Util = trace.HighPower.TargetP99Util()
	rack, err := trace.GenRack(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, 0, err
	}
	base := rack.RackPower()
	ocCost := cfg.HW.OCCoreCost()
	over := 0
	total := 0
	tbl := &Table{
		Caption: fmt.Sprintf("Fig 6: Rack power over 5 weekdays (limit %.0f W), hourly max", rack.LimitWatts),
		Headers: []string{"Time", "BaselineW", "WithOverclockW", "OverLimit"},
	}
	for i := 0; i < base.Len(); i++ {
		ts := base.TimeAt(i)
		if ts.Weekday() == time.Saturday || ts.Weekday() == time.Sunday {
			continue
		}
		// Overclock demand from the rack's user-facing VMs.
		demand := 0.0
		for _, st := range rack.Servers {
			for _, vm := range st.Spec.VMs {
				switch vm.Service.Pattern {
				case trace.PatternSpiky, trace.PatternBroadPeak, trace.PatternDiurnal:
					if vm.Service.UtilAt(ts, nil) >= 0.5 {
						demand += float64(vm.Cores) * ocCost * 0.6
					}
				}
			}
		}
		withOC := base.Values[i] + demand
		total++
		if withOC > rack.LimitWatts {
			over++
		}
		if ts.Minute() == 0 && ts.Hour()%3 == 0 {
			tbl.AddRow(ts.Format("Mon 15:04"), base.Values[i], withOC, withOC > rack.LimitWatts)
		}
	}
	frac := 0.0
	if total > 0 {
		frac = float64(over) / float64(total)
	}
	return tbl, frac, nil
}

// Fig7 reproduces the CPU aging comparison over a 5-day diurnal trace:
// expected aging, non-overclocked, always-overclock and overclock-aware
// (25% of time at the daily peak).
func Fig7() *Table {
	model := lifetime.DefaultAgingModel()
	hw := machine.DefaultConfig()
	vr := hw.VoltageRatio(hw.MaxOCMHz)
	diurnal := trace.ServiceProfile{
		Name: "diurnal", Pattern: trace.PatternDiurnal,
		BaseUtil: 0.10, PeakUtil: 0.66, WeekendFactor: 1,
	}
	simulate := func(ocHour func(h int) bool) time.Duration {
		w := lifetime.NewWear(model)
		for d := 0; d < 5; d++ {
			for h := 0; h < 24; h++ {
				ts := figStart.Add(time.Duration(d*24+h) * time.Hour)
				ratio := 1.0
				if ocHour(h) {
					ratio = vr
				}
				w.Add(time.Hour, diurnal.UtilAt(ts, nil), ratio)
			}
		}
		return w.Aged()
	}
	days := func(d time.Duration) float64 { return d.Hours() / 24 }
	tbl := &Table{
		Caption: "Fig 7: CPU ageing over a 5-day diurnal trace",
		Headers: []string{"Policy", "AgedDays", "OCFraction"},
	}
	tbl.AddRow("Expected ageing", 5.0, "-")
	tbl.AddRow("Non-overclocked", days(simulate(func(int) bool { return false })), "0%")
	tbl.AddRow("Always overclock", days(simulate(func(int) bool { return true })), "100%")
	tbl.AddRow("Overclock-aware", days(simulate(func(h int) bool { return h >= 10 && h < 16 })), "25%")
	return tbl
}

// Fig8 reproduces the CDF of DailyMed rack-power prediction RMSE across
// regions: templates are fitted on week one and scored on week two.
func Fig8(racksPerRegion int, seed int64) (*Table, error) {
	// Two training weeks (so the weekend template has four samples and a
	// robust median) and one evaluation week. Anomalous days stay in
	// training: Fig 8 measures steady-state predictability; predictor
	// robustness to outliers is Fig 15's story.
	cfg := trace.DefaultFleetConfig(figStart, 21*24*time.Hour)
	cfg.Seed = seed
	cfg.RacksPerRegion = racksPerRegion
	cfg.RackTemplate.OutlierWithinDays = 14
	split := figStart.Add(14 * 24 * time.Hour)
	// Stream: one rack per worker, reduced to (region, RMSE). Folding in
	// rack-index order keeps each region's RMSE list in the exact order the
	// materialized loop produced.
	type rackRMSE struct {
		region string
		rmse   float64
		err    error
	}
	outs := parallel.Map(cfg.NumRacks(), parallel.Options{Workers: cfg.Workers}, func(i int) rackRMSE {
		fr, err := trace.GenFleetRack(cfg, i)
		if err != nil {
			return rackRMSE{err: err}
		}
		total := fr.RackPower()
		train := total.Slice(figStart, split)
		test := total.Slice(split, total.End())
		ev, err := predict.Evaluate(predict.NewDailyMed(), train, test)
		if err != nil {
			return rackRMSE{err: err}
		}
		return rackRMSE{region: fr.Region, rmse: ev.RMSE}
	})
	byRegion := map[string][]float64{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		byRegion[o.region] = append(byRegion[o.region], o.rmse)
	}
	tbl := &Table{
		Caption: "Fig 8: CDF of rack power prediction RMSE (W) per region (DailyMed)",
		Headers: []string{"Region", "p50", "p90", "p99"},
	}
	for _, region := range cfg.Regions {
		rs := byRegion[region]
		tbl.AddRow(region, stats.Percentile(rs, 50), stats.Percentile(rs, 90), stats.Percentile(rs, 99))
	}
	return tbl, nil
}

// Fig9 reproduces the normalized power of six servers within one rack over
// a week (4-hour sampling), showing heterogeneous profiles and a changing
// dominant server.
func Fig9(seed int64) (*Table, error) {
	cfg := trace.DefaultRackGenConfig("fig9", figStart, 7*24*time.Hour)
	cfg.Servers = 6
	rack, err := trace.GenRack(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	// Normalize to the max across all servers and times.
	maxP := 0.0
	for _, s := range rack.Servers {
		if m := s.Power.Max(); m > maxP {
			maxP = m
		}
	}
	tbl := &Table{
		Caption: "Fig 9: Normalized power of six servers in one rack (4-hour samples)",
		Headers: []string{"Time", "SrvA", "SrvB", "SrvC", "SrvD", "SrvE", "SrvF", "Dominant"},
	}
	steps := rack.Servers[0].Power.Len()
	stride := int(4 * time.Hour / cfg.Step)
	for i := 0; i < steps; i += stride {
		row := []any{rack.Servers[0].Power.TimeAt(i).Format("Mon 15:04")}
		best, bestP := 0, 0.0
		for si, s := range rack.Servers {
			v := s.Power.Values[i] / maxP
			row = append(row, v)
			if s.Power.Values[i] > bestP {
				bestP = s.Power.Values[i]
				best = si
			}
		}
		row = append(row, string(rune('A'+best)))
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// Fig15 reproduces the comparison of template-creation strategies: the
// distribution of mean prediction error (signed; positive = over-predicts)
// and RMSE per strategy across a generated fleet.
func Fig15(racks int, seed int64) (*Table, error) {
	cfg := trace.DefaultFleetConfig(figStart, 14*24*time.Hour)
	cfg.Seed = seed
	cfg.Regions = []string{"Fleet"}
	cfg.RacksPerRegion = racks
	// Outlier days in the training week are what separate Weekly (which
	// replays them) from DailyMed (whose per-day median rejects them).
	cfg.RackTemplate.OutlierDayProb = 0.5
	cfg.RackTemplate.OutlierWithinDays = 7
	split := figStart.Add(7 * 24 * time.Hour)
	// Stream: each worker generates its rack and reduces it to per-strategy
	// evaluations; the trace is dropped before the next rack starts.
	type rackEvals struct {
		evs []predict.Evaluation
		err error
	}
	outs := parallel.Map(cfg.NumRacks(), parallel.Options{Workers: cfg.Workers}, func(i int) rackEvals {
		fr, err := trace.GenFleetRack(cfg, i)
		if err != nil {
			return rackEvals{err: err}
		}
		total := fr.RackPower()
		train := total.Slice(figStart, split)
		test := total.Slice(split, total.End())
		evs, err := predict.EvaluateAll(train, test)
		return rackEvals{evs: evs, err: err}
	})
	errs := map[string][]float64{}
	rmses := map[string][]float64{}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		for _, ev := range o.evs {
			errs[ev.Strategy] = append(errs[ev.Strategy], ev.MeanErr)
			rmses[ev.Strategy] = append(rmses[ev.Strategy], ev.RMSE)
		}
	}
	tbl := &Table{
		Caption: "Fig 15: Power prediction per strategy (signed mean error W; positive = over-prediction)",
		Headers: []string{"Strategy", "ErrP10", "ErrP50", "ErrP90", "RMSEp50", "RMSEp99"},
	}
	for _, p := range predict.All() {
		name := p.Name()
		tbl.AddRow(name,
			stats.Percentile(errs[name], 10),
			stats.Percentile(errs[name], 50),
			stats.Percentile(errs[name], 90),
			stats.Percentile(rmses[name], 50),
			stats.Percentile(rmses[name], 99))
	}
	return tbl, nil
}

// Fig16 reproduces the production Service B experiment: CPU utilization vs
// request rate with and without overclocking, plus the extra load served
// at equal utilization.
func Fig16() *Table {
	hw := machine.DefaultConfig()
	w := workload.NewWebConf(2000)
	tbl := &Table{
		Caption: "Fig 16: Service B CPU utilization vs request rate",
		Headers: []string{"RPS", "BaselineUtil", "OverclockUtil", "UtilReduction"},
	}
	for rps := 600.0; rps <= 1800; rps += 200 {
		b := w.Util(rps, hw.TurboMHz, hw.TurboMHz)
		o := w.Util(rps, hw.MaxOCMHz, hw.TurboMHz)
		tbl.AddRow(fmt.Sprintf("%.0f", rps), b, o, fmt.Sprintf("%.0f%%", 100*(1-o/b)))
	}
	peakUtil := w.Util(1800, hw.TurboMHz, hw.TurboMHz)
	extra := w.RPSAtUtil(peakUtil, hw.MaxOCMHz, hw.TurboMHz)/1800 - 1
	tbl.AddRow("equal-util", peakUtil, peakUtil, fmt.Sprintf("+%.0f%% load", 100*extra))
	return tbl
}

// ServiceAExtraLoad reproduces §V-C's Service A synthetic-traffic result:
// the additional load fraction the service's VMs absorb when overclocked
// at their provisioning utilization target (the paper reports 25%).
func ServiceAExtraLoad() float64 {
	hw := machine.DefaultConfig()
	w := workload.NewWebConf(1000)
	target := 0.8 // provisioning target utilization
	base := w.RPSAtUtil(target, hw.TurboMHz, hw.TurboMHz)
	oc := w.RPSAtUtil(target, hw.MaxOCMHz, hw.TurboMHz)
	return oc/base - 1
}

// Fig17 reproduces the Service C experiment: 5-minute utilization peaks
// over a weekday with and without overclocking, and the peak reduction.
func Fig17() (*Table, float64) {
	hw := machine.DefaultConfig()
	svc := trace.ServiceC()
	w := workload.NewWebConf(1000)
	day := figStart.Add(24 * time.Hour)
	var basePeaks, ocPeaks []float64
	for h := 8; h < 20; h++ {
		baseMax, ocMax := 0.0, 0.0
		for m := 0; m < 12; m++ {
			ts := day.Add(time.Duration(h)*time.Hour + time.Duration(m)*5*time.Minute)
			load := svc.UtilAt(ts, nil) // offered load fraction
			rps := load * w.CapacityRPSAtTurbo
			if u := w.Util(rps, hw.TurboMHz, hw.TurboMHz); u > baseMax {
				baseMax = u
			}
			if u := w.Util(rps, hw.MaxOCMHz, hw.TurboMHz); u > ocMax {
				ocMax = u
			}
		}
		basePeaks = append(basePeaks, baseMax)
		ocPeaks = append(ocPeaks, ocMax)
	}
	tbl := &Table{
		Caption: "Fig 17: Service C 5-minute utilization peaks over a weekday",
		Headers: []string{"Hour", "BaselinePeak", "OverclockPeak"},
	}
	for i := range basePeaks {
		tbl.AddRow(fmt.Sprintf("%02d:00", 8+i), basePeaks[i], ocPeaks[i])
	}
	reduction := 1 - stats.Mean(ocPeaks)/stats.Mean(basePeaks)
	return tbl, reduction
}
