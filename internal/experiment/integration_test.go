package experiment

// Integration tests wiring the real components together end to end —
// machine → cluster server → sOA → gOA → rack manager — without the
// experiment harness in between.

import (
	"testing"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/power"
	"smartoclock/internal/timeseries"
)

var integStart = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

// buildPair builds two servers with sOAs on one rack.
func buildPair(t *testing.T, limitWatts float64) (*power.Rack, []*cluster.Server, []*core.SOA) {
	t.Helper()
	hw := machine.DefaultConfig()
	hw.Cores = 16
	var servers []*cluster.Server
	var soas []*core.SOA
	var pservers []power.Server
	for _, name := range []string{"s0", "s1"} {
		s := cluster.NewServer(name, hw, 0)
		for c := 0; c < s.NumCores(); c++ {
			s.SetCoreUtil(c, 0.6)
		}
		budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), hw.Cores, integStart)
		cfg := core.DefaultSOAConfig()
		cfg.ExploreConfirm = time.Second
		cfg.InitialBackoff = 2 * time.Second
		soa := core.NewSOA(cfg, s, budgets, limitWatts/2, integStart)
		servers = append(servers, s)
		soas = append(soas, soa)
		pservers = append(pservers, s)
	}
	rack := power.NewRack(power.DefaultRackConfig("integ", limitWatts), pservers...)
	return rack, servers, soas
}

// TestIntegrationGrantEnforceCapRecover drives the full cycle: grant →
// enforcement → rack warning → capping → budget revert → recovery.
func TestIntegrationGrantEnforceCapRecover(t *testing.T) {
	rack, servers, soas := buildPair(t, 1200)
	now := integStart
	rack.Subscribe(func(ev power.Event) {
		for _, a := range soas {
			a.OnRackEvent(now, ev)
		}
	})

	// Both servers overclock all cores.
	for i, a := range soas {
		d := a.Request(now, core.Request{
			VM: "vm", Cores: servers[i].NumCores(), TargetMHz: 4000, Priority: core.PriorityMetric,
		})
		if !d.Granted {
			t.Fatalf("server %d grant failed: %+v", i, d)
		}
	}
	if servers[0].Machine().OverclockedCores() == 0 {
		t.Fatal("no cores overclocked after grant")
	}

	// Load rises beyond what the rack can absorb: the rack manager first
	// warns (sOAs shed), and if pressure persists it caps.
	for _, s := range servers {
		for c := 0; c < s.NumCores(); c++ {
			s.SetCoreUtil(c, 1.0)
		}
	}
	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		for _, a := range soas {
			a.Tick(now)
		}
		rack.Tick(now)
		for _, s := range servers {
			s.Advance(time.Second)
		}
	}
	if rack.Power() >= rack.Config().LimitWatts {
		t.Fatalf("rack still over limit: %.0f / %.0f", rack.Power(), rack.Config().LimitWatts)
	}

	// Load subsides: caps restore, the feedback loop climbs back toward
	// the overclock targets within the budgets.
	for _, s := range servers {
		for c := 0; c < s.NumCores(); c++ {
			s.SetCoreUtil(c, 0.3)
		}
	}
	for i := 0; i < 60; i++ {
		now = now.Add(time.Second)
		for _, a := range soas {
			a.Tick(now)
		}
		rack.Tick(now)
	}
	if rack.IsCapped() {
		t.Fatal("caps not released after load subsided")
	}
	oc := servers[0].Machine().OverclockedCores() + servers[1].Machine().OverclockedCores()
	if oc == 0 {
		t.Fatal("overclocking did not recover after load subsided")
	}
}

// TestIntegrationHeterogeneousBudgetFlow exercises the sOA→gOA profile
// exchange and budget assignment loop on live components.
func TestIntegrationHeterogeneousBudgetFlow(t *testing.T) {
	_, servers, soas := buildPair(t, 1200)
	now := integStart
	goa := core.NewGOA("integ", 1200)

	// Server 0 runs hotter and demands overclocking; server 1 is idleish.
	for c := 0; c < servers[0].NumCores(); c++ {
		servers[0].SetCoreUtil(c, 0.8)
	}
	for c := 0; c < servers[1].NumCores(); c++ {
		servers[1].SetCoreUtil(c, 0.2)
	}
	soas[0].Request(now, core.Request{VM: "hot", Cores: 8, TargetMHz: 4000, Priority: core.PriorityMetric})

	// Run one profile period so the sOAs record slots, then exchange.
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		for _, a := range soas {
			a.Tick(now)
		}
	}
	for i, a := range soas {
		powerTpl, ocTpl := a.Profile()
		goa.SetProfile(servers[i].Name(), core.ServerProfile{
			Power: powerTpl, OC: ocTpl,
			OCCoreCost: servers[i].Machine().Config().OCCoreCost(),
		})
	}
	// Query inside the recorded profile slot (recording started at 9:00
	// with 5-minute slots).
	at := integStart.Add(2 * time.Minute)
	budgets := goa.BudgetsAt(at)
	if budgets["s0"] <= budgets["s1"] {
		t.Fatalf("demanding server must get the larger budget: %v", budgets)
	}
	total := budgets["s0"] + budgets["s1"]
	if total > 1200+1e-6 {
		t.Fatalf("budgets exceed the rack limit: %v", total)
	}
	// Assign and verify the sOAs honor the new budgets.
	tpls := goa.BudgetTemplates(5 * time.Minute)
	for i, a := range soas {
		a.SetAssignedBudget(tpls[servers[i].Name()])
		if a.BudgetAt(at) <= 0 {
			t.Fatalf("server %d budget not applied", i)
		}
	}
}

// TestIntegrationScheduledReservationLifecycle admits a schedule-based
// request ahead of its window, consumes the reservation during it and
// verifies the budget accounting afterwards.
func TestIntegrationScheduledReservationLifecycle(t *testing.T) {
	_, servers, soas := buildPair(t, 4000)
	a, s := soas[0], servers[0]
	now := integStart

	d := a.Request(now, core.Request{
		VM: "batch", Cores: 4, TargetMHz: 4000,
		Priority: core.PriorityScheduled, Duration: 10 * time.Minute,
	})
	if !d.Granted {
		t.Fatalf("scheduled grant failed: %+v", d)
	}
	// During the window the cores run overclocked and draw down the
	// reservation.
	for i := 0; i < 10; i++ {
		now = now.Add(time.Minute)
		a.Tick(now)
		s.Advance(time.Minute)
	}
	for _, c := range d.Cores {
		if s.Machine().OCTime(c) == 0 {
			t.Fatalf("core %d accumulated no overclocked time-in-state", c)
		}
	}
	a.Stop(now, "batch")
	if s.Machine().OverclockedCores() != 0 {
		t.Fatal("cores did not return to turbo")
	}
}

// TestIntegrationWearGateWithClusterWear closes the loop between the
// cluster's per-core wear trackers and the sOA's online wear gate.
func TestIntegrationWearGateWithClusterWear(t *testing.T) {
	hw := machine.DefaultConfig()
	hw.Cores = 8
	s := cluster.NewServer("wear", hw, 0)
	for c := 0; c < s.NumCores(); c++ {
		s.SetCoreUtil(c, 1.0)
	}
	budgets := lifetime.NewCoreBudgets(lifetime.BudgetConfig{
		Epoch: 24 * time.Hour, Fraction: 0.9, // time budget never binds
	}, hw.Cores, integStart)
	gate := lifetime.OnlineWearGate{Margin: 0.05, MinObservation: 30 * time.Minute}
	cfg := core.DefaultSOAConfig()
	cfg.WearGate = func(c int) bool { return gate.Allow(s.CoreWear(c)) }
	a := core.NewSOA(cfg, s, budgets, 10000, integStart)

	if d := a.Request(integStart, core.Request{VM: "vm", Cores: 8, TargetMHz: 4000, Priority: core.PriorityMetric}); !d.Granted {
		t.Fatalf("initial grant failed: %+v", d)
	}
	// Run fully overclocked at full load: wear accumulates ~5.5x faster
	// than the envelope, so the gate must close within the hour.
	now := integStart
	for i := 0; i < 90 && len(a.Sessions()) > 0; i++ {
		now = now.Add(time.Minute)
		s.Advance(time.Minute)
		a.Tick(now)
	}
	if len(a.Sessions()) != 0 {
		t.Fatal("wear gate never stopped the session")
	}
	// And new requests are refused while worn.
	if d := a.Request(now, core.Request{VM: "vm2", Cores: 2, TargetMHz: 4000, Priority: core.PriorityMetric}); d.Granted {
		t.Fatal("worn server granted a new overclock")
	}
}

// TestIntegrationTemplateFromPredictor checks the ablation helper: a
// materialized predictor template must agree with direct predictions.
func TestIntegrationTemplateFromPredictor(t *testing.T) {
	start := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	train := timeseries.New(start, time.Hour)
	for d := 0; d < 7; d++ {
		for h := 0; h < 24; h++ {
			train.Append(float64(100 + 10*h))
		}
	}
	for _, strategy := range []string{"dailymed", "dailymax", "flatmed", "flatmax", "weekly"} {
		tpl := templateFromPredictor(predictorFor(strategy), train)
		ref := predictorFor(strategy)
		ref.Fit(train)
		at := start.Add(8*24*time.Hour + 9*time.Hour) // Tuesday 9:00 next week
		want := ref.Predict(at)
		if got := tpl.At(at); got != want {
			t.Fatalf("%s: template %v != predictor %v", strategy, got, want)
		}
	}
	if p := predictorFor("bogus"); p.Name() != "DailyMed" {
		t.Fatal("unknown strategy must default to DailyMed")
	}
}
