package experiment

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"smartoclock/internal/baselines"
	"smartoclock/internal/parallel"
	"smartoclock/internal/trace"
)

// This file is the paper-scale throughput benchmark behind the socbench
// scaling curve (ROADMAP item 1). The paper's production study covers 7.1k
// dedicated racks; RunFleetScale runs a streamed fleet of any size — each
// worker generates its rack trace on entry, simulates it and drops it, so
// peak memory is O(workers x rack), not O(fleet). The result carries honest
// parallelism stamps (GOMAXPROCS, effective parallelism) and a measured
// bytes/rack so regressions in the O(active shard) property are caught by
// the scale-smoke CI job.

// ScaleConfig parameterizes one point of the fleet scaling curve.
type ScaleConfig struct {
	Seed int64
	// Racks is the fleet size (single region, even class mix).
	Racks int
	// TrainDays/EvalDays size each rack's trace and simulation windows.
	// The scale curve defaults to a smaller window than Table I — the
	// benchmark measures racks/sec and bytes/rack, not paper metrics.
	TrainDays, EvalDays int
	Step                time.Duration
	// ServersPerRack overrides the rack template density; <= 0 keeps the
	// paper default (28).
	ServersPerRack int
	// System selects the simulated control system; the zero value is
	// replaced by SmartOClock (the full system).
	System baselines.System
	// UseDefaultSystem keeps System's zero value (Central) instead of
	// substituting SmartOClock.
	UseDefaultSystem bool

	Workers       int
	ShuffleShards int64
	// SampleEvery is the heap sampling cadence; <= 0 selects 20ms.
	SampleEvery time.Duration
}

// DefaultScaleConfig returns a scale point sized so the 7.1k-rack run
// finishes in minutes on one core: a 2-day training window and 1 evaluated
// day per rack.
func DefaultScaleConfig(racks int) ScaleConfig {
	return ScaleConfig{
		Seed:      1,
		Racks:     racks,
		TrainDays: 2,
		EvalDays:  1,
		Step:      5 * time.Minute,
		System:    baselines.SmartOClock,
	}
}

// ScaleResult is one measured point of the scaling curve.
type ScaleResult struct {
	Racks          int     `json:"racks"`
	ServersPerRack int     `json:"servers_per_rack"`
	TrainDays      int     `json:"train_days"`
	EvalDays       int     `json:"eval_days"`
	WallSeconds    float64 `json:"wall_seconds"`
	RacksPerSec    float64 `json:"racks_per_sec"`

	// PeakHeapBytes is the sampled peak live-heap growth over the run's
	// post-GC baseline; BytesPerRack divides it by the fleet size — the
	// number that must stay flat as the fleet grows for memory to be
	// O(active shard).
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	BytesPerRack  uint64 `json:"bytes_per_rack"`
	// AllocBytesPerRack is cumulative allocation churn per rack (throughput
	// cost, not residency).
	AllocBytesPerRack uint64 `json:"alloc_bytes_per_rack"`

	// Workers is the configured worker bound; EffectiveParallelism is the
	// parallelism the host could actually deliver, min(workers, GOMAXPROCS)
	// — the honest stamp the flat-speedup bench methodology was missing.
	Workers              int `json:"workers"`
	GoMaxProcs           int `json:"gomaxprocs"`
	EffectiveParallelism int `json:"effective_parallelism"`

	// Determinism anchors: pure functions of (seed, racks, config), equal
	// at any worker count or dispatch order.
	Requests  int `json:"requests"`
	Successes int `json:"successes"`
	CapEvents int `json:"cap_events"`
}

// heapSampler polls the runtime for live-heap size until stopped and
// records the peak. Sampling (not exact accounting) is the right tool here:
// the interesting signal is whether residency scales with fleet size, a
// many-megabyte effect no 20ms sampler misses.
type heapSampler struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

func startHeapSampler(every time.Duration) *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak.Load() {
				s.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// halt stops sampling and returns the observed peak heap.
func (s *heapSampler) halt() uint64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// RunFleetScale runs one streamed fleet of cfg.Racks racks under a single
// system and measures throughput and memory. Every rack is generated inside
// its shard from (seed, index) — the fleet is never materialized — and
// shard metrics fold in index order, so Requests/Successes/CapEvents are
// bit-identical at any worker count.
func RunFleetScale(cfg ScaleConfig) (*ScaleResult, error) {
	if cfg.Racks <= 0 {
		return nil, fmt.Errorf("experiment: scale run needs racks > 0, got %d", cfg.Racks)
	}
	base := DefaultScaleConfig(cfg.Racks)
	if cfg.TrainDays <= 0 {
		cfg.TrainDays = base.TrainDays
	}
	if cfg.EvalDays <= 0 {
		cfg.EvalDays = base.EvalDays
	}
	if cfg.Step <= 0 {
		cfg.Step = base.Step
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 20 * time.Millisecond
	}
	if cfg.System == baselines.Central && !cfg.UseDefaultSystem {
		cfg.System = baselines.SmartOClock
	}

	fs := DefaultFleetSimConfig()
	fs.Seed = cfg.Seed
	fs.TrainDays = cfg.TrainDays
	fs.EvalDays = cfg.EvalDays
	fs.Step = cfg.Step
	fs.Workers = cfg.Workers
	fs.ShuffleShards = cfg.ShuffleShards

	days := cfg.TrainDays + cfg.EvalDays
	fcfg := trace.DefaultFleetConfig(fleetStart, time.Duration(days)*24*time.Hour)
	fcfg.Seed = cfg.Seed
	fcfg.Regions = []string{"Scale"}
	fcfg.RacksPerRegion = cfg.Racks
	fcfg.Step = cfg.Step
	if cfg.ServersPerRack > 0 {
		fcfg.RackTemplate.Servers = cfg.ServersPerRack
	}

	// Settle the heap so the sampled peak measures this run, not leftovers.
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	sampler := startHeapSampler(cfg.SampleEvery)

	type out struct {
		m   rackMetrics
		err error
	}
	start := time.Now()
	outs := parallel.Map(cfg.Racks, fleetOpts(fs), func(i int) out {
		fr, err := trace.GenFleetRack(fcfg, i)
		if err != nil {
			return out{err: err}
		}
		return out{m: rackRun(fr.RackTrace, cfg.System, fs)}
	})
	wall := time.Since(start)

	peak := sampler.halt()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	var agg rackMetrics
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		agg.accumulate(o.m)
	}

	res := &ScaleResult{
		Racks:          cfg.Racks,
		ServersPerRack: fcfg.RackTemplate.Servers,
		TrainDays:      cfg.TrainDays,
		EvalDays:       cfg.EvalDays,
		WallSeconds:    wall.Seconds(),
		RacksPerSec:    float64(cfg.Racks) / wall.Seconds(),
		Workers:        cfg.Workers,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Requests:       agg.requests,
		Successes:      agg.successes,
		CapEvents:      agg.caps,
	}
	res.EffectiveParallelism = EffectiveParallelism(cfg.Workers, res.GoMaxProcs)
	if peak > before.HeapAlloc {
		res.PeakHeapBytes = peak - before.HeapAlloc
	}
	res.BytesPerRack = res.PeakHeapBytes / uint64(cfg.Racks)
	res.AllocBytesPerRack = (after.TotalAlloc - before.TotalAlloc) / uint64(cfg.Racks)
	return res, nil
}

// EffectiveParallelism is the parallelism a worker bound can actually reach
// on this host: min(workers, GOMAXPROCS), with workers <= 0 meaning "use
// GOMAXPROCS" exactly as parallel.Options does.
func EffectiveParallelism(workers, gomaxprocs int) int {
	if workers <= 0 || workers > gomaxprocs {
		return gomaxprocs
	}
	return workers
}
