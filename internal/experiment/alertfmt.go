package experiment

import (
	"fmt"

	"smartoclock/internal/alert"
)

// FormatAlerts renders fired alert episodes as a report table, in the
// deterministic order alert.Eval produced them.
func FormatAlerts(alerts []alert.Alert) *Table {
	tbl := &Table{
		Caption: "Alerts: risk rules evaluated over the recorded series",
		Headers: []string{"Rule", "Severity", "Series", "From", "Duration", "Peak", "Limit"},
	}
	if len(alerts) == 0 {
		tbl.AddRow("(none fired)", "", "", "", "", "", "")
		return tbl
	}
	for i := range alerts {
		a := &alerts[i]
		tbl.AddRow(a.Rule, string(a.Severity), a.Series,
			a.From.UTC().Format("15:04:05"), a.Duration().String(),
			fmt.Sprintf("%.4g", a.Peak), fmt.Sprintf("%.4g", a.Limit))
	}
	return tbl
}
