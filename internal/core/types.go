// Package core implements SmartOClock itself (§IV): the Server Overclocking
// Agent (sOA) with prediction-based admission control, a prioritized
// frequency feedback loop and exploration/exploitation beyond assigned
// budgets; the Global Overclocking Agent (gOA) that computes heterogeneous
// per-server power budgets from power and overclock templates; and the
// Workload Intelligence agents that trigger overclocking from application
// metrics or schedules and fall back to scale-out when overclocking is
// unavailable.
package core

import (
	"fmt"
	"time"
)

// Priority orders overclocking sessions in the sOA's feedback loop:
// higher-priority VMs are overclocked to the maximum extent before
// lower-priority ones (§IV-D).
type Priority int

const (
	// PriorityBestEffort is background opportunistic overclocking.
	PriorityBestEffort Priority = iota
	// PriorityMetric is unscheduled, metrics-triggered overclocking.
	PriorityMetric
	// PriorityScheduled is reserved, schedule-based overclocking.
	PriorityScheduled
)

// String returns the priority name.
func (p Priority) String() string {
	switch p {
	case PriorityBestEffort:
		return "best-effort"
	case PriorityMetric:
		return "metric"
	case PriorityScheduled:
		return "scheduled"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// Request asks the sOA to overclock a VM.
type Request struct {
	// VM identifies the requesting VM on this server.
	VM string
	// Cores is how many of the VM's cores to overclock.
	Cores int
	// TargetMHz is the requested frequency (clamped to the host's range).
	TargetMHz int
	// Priority classifies the request.
	Priority Priority
	// Duration is the expected overclocking duration; zero means
	// open-ended (metrics-based), bounded by the sOA's default horizon
	// for admission checks.
	Duration time.Duration
	// PreferredCores pins the session to specific core indices (the VM's
	// own cores). When their overclock budget is insufficient the sOA
	// falls back to rescheduling onto cores with headroom (§IV-D).
	PreferredCores []int
	// Span is the causal span of the WI-side request (internal/causal).
	// The sOA's admission verdict is recorded with this as its parent,
	// chaining the decision back to what asked for it. Zero (provenance
	// off) leaves the verdict parentless.
	Span uint64
}

// Validate reports whether the request is well formed.
func (r Request) Validate() error {
	switch {
	case r.VM == "":
		return fmt.Errorf("core: request without VM")
	case r.Cores <= 0:
		return fmt.Errorf("core: request for %d cores", r.Cores)
	case r.TargetMHz <= 0:
		return fmt.Errorf("core: request target %d MHz", r.TargetMHz)
	case r.Duration < 0:
		return fmt.Errorf("core: negative duration %v", r.Duration)
	}
	return nil
}

// RejectReason classifies why a request was denied.
type RejectReason string

const (
	// RejectPower means the power budget cannot absorb the overclock.
	RejectPower RejectReason = "power"
	// RejectLifetime means the per-core overclocking time budget is
	// exhausted.
	RejectLifetime RejectReason = "lifetime"
	// RejectDuplicate means the VM already has an active session.
	RejectDuplicate RejectReason = "duplicate"
	// RejectInvalid means the request was malformed.
	RejectInvalid RejectReason = "invalid"
)

// Decision is the sOA's answer to a Request.
type Decision struct {
	Granted bool
	Reason  RejectReason // set when not granted
	// Cores are the core indices assigned to the session when granted.
	Cores []int
}

// Host abstracts the server hardware and its power model as seen by an sOA.
// The simulated cluster's servers implement it; a production deployment
// would back it with PMT/HSMP telemetry and CPPC frequency control.
type Host interface {
	// Name identifies the server.
	Name() string
	// NumCores returns the core count.
	NumCores() int
	// TurboMHz, MaxOCMHz and StepMHz describe the frequency range.
	TurboMHz() int
	MaxOCMHz() int
	StepMHz() int
	// Power reads the server's instantaneous power draw in watts.
	Power() float64
	// CoreUtil reads core i's utilization in [0,1].
	CoreUtil(core int) float64
	// SetDesiredFreq requests that core run at mhz; the hardware clamps to
	// its range and any capping ceiling.
	SetDesiredFreq(core, mhz int)
	// DesiredFreq returns the last requested frequency for core.
	DesiredFreq(core int) int
	// OCDeltaWatts estimates the extra power of running n cores at mhz
	// (instead of turbo) at the given utilization — the model used for
	// admission checks.
	OCDeltaWatts(cores, mhz int, util float64) float64
}

// ExhaustionKind labels proactive resource-exhaustion signals (§IV-D,
// Fig 11).
type ExhaustionKind string

const (
	// ExhaustPower signals the server will run out of power budget for
	// overclocking.
	ExhaustPower ExhaustionKind = "power"
	// ExhaustOCBudget signals the overclocking time budget will run out.
	ExhaustOCBudget ExhaustionKind = "oc-budget"
)
