package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"smartoclock/internal/lifetime"
	"smartoclock/internal/timeseries"
)

// exerciseSOA drives an sOA through representative activity: grants, a
// rejection, ticks across profile slots, and exploration pressure.
func exerciseSOA(a *SOA, h *fakeHost) {
	h.setAllUtil(0.6)
	a.Request(soaStart, ocReq("vm1", 2))
	a.Request(soaStart.Add(time.Minute), ocReq("vm2", 2))
	req := ocReq("vm3", 2)
	req.Priority = PriorityScheduled
	req.Duration = 30 * time.Minute
	a.Request(soaStart.Add(2*time.Minute), req)
	for i := 0; i < 30; i++ {
		a.Tick(soaStart.Add(time.Duration(i) * time.Minute))
	}
}

func TestSOASnapshotRoundtripBytes(t *testing.T) {
	a, h := newTestSOA(400)
	a.SetAssignedBudget(timeseries.FlatWeek(420, 5*time.Minute))
	a.SetPowerTemplate(timeseries.FlatWeek(300, 5*time.Minute))
	exerciseSOA(a, h)

	snap := a.Snapshot()
	b1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh agent built from the same configuration, restored, must
	// produce a byte-identical snapshot.
	b, h2 := newTestSOA(400)
	h2.setAllUtil(0.6)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshot not lossless:\n%s\nvs\n%s", b1, b2)
	}

	// Restored sessions drive the host: frequencies re-applied.
	for vm, s := range a.Sessions() {
		rs, ok := b.Sessions()[vm]
		if !ok {
			t.Fatalf("session %s lost in restore", vm)
		}
		if rs.CurrentMHz() != s.CurrentMHz() {
			t.Fatalf("session %s currentMHz = %d, want %d", vm, rs.CurrentMHz(), s.CurrentMHz())
		}
		for _, c := range rs.Cores {
			if h2.DesiredFreq(c) != h.DesiredFreq(c) {
				t.Fatalf("core %d freq = %d, want %d", c, h2.DesiredFreq(c), h.DesiredFreq(c))
			}
		}
	}
	if b.Granted() != a.Granted() || b.Rejected() != a.Rejected() {
		t.Fatalf("counters %d/%d, want %d/%d", b.Granted(), b.Rejected(), a.Granted(), a.Rejected())
	}
}

func TestSOARestoredContinuesIdentically(t *testing.T) {
	a, h := newTestSOA(400)
	a.SetAssignedBudget(timeseries.FlatWeek(420, 5*time.Minute))
	a.SetPowerTemplate(timeseries.FlatWeek(300, 5*time.Minute))
	exerciseSOA(a, h)

	snap := a.Snapshot()
	b, h2 := newTestSOA(400)
	h2.setAllUtil(0.6)
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// Drive both agents through identical further activity; their states
	// must remain byte-identical at every step.
	for i := 30; i < 60; i++ {
		now := soaStart.Add(time.Duration(i) * time.Minute)
		a.Tick(now)
		b.Tick(now)
	}
	a.Request(soaStart.Add(time.Hour), ocReq("vm4", 1))
	b.Request(soaStart.Add(time.Hour), ocReq("vm4", 1))
	ba, _ := json.Marshal(a.Snapshot())
	bb, _ := json.Marshal(b.Snapshot())
	if !bytes.Equal(ba, bb) {
		t.Fatalf("restored agent diverged:\n%s\nvs\n%s", ba, bb)
	}
}

func TestSOARestoreRejectsMismatchedLedger(t *testing.T) {
	a, h := newTestSOA(400)
	exerciseSOA(a, h)
	snap := a.Snapshot()
	snap.Budgets.Cores = snap.Budgets.Cores[:3] // pretend different hardware

	b, _ := newTestSOA(400)
	before, _ := json.Marshal(b.Snapshot())
	if err := b.Restore(snap); err == nil {
		t.Fatal("expected error for mismatched ledger core count")
	}
	after, _ := json.Marshal(b.Snapshot())
	if !bytes.Equal(before, after) {
		t.Fatal("failed Restore must not mutate the agent")
	}
}

func TestSOARestoreRejectsOutOfRangeCores(t *testing.T) {
	a, h := newTestSOA(400)
	exerciseSOA(a, h)
	snap := a.Snapshot()
	if len(snap.Sessions) == 0 {
		t.Fatal("test setup: no sessions")
	}
	snap.Sessions[0].Cores = []int{99}
	b, _ := newTestSOA(400)
	if err := b.Restore(snap); err == nil {
		t.Fatal("expected error for out-of-range session core")
	}
}

func TestGOASnapshotRoundtrip(t *testing.T) {
	g := NewGOA("rack-1", 5000)
	day := timeseries.FlatWeek(250, time.Hour)
	for i := 0; i < 4; i++ {
		g.SetProfile(fmt.Sprintf("s%d", i), ServerProfile{
			Power:      day,
			OC:         nil,
			OCCoreCost: 3.5,
		})
	}
	snap := g.Snapshot()
	b1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}

	g2 := NewGOA("other", 1)
	g2.Restore(snap)
	b2, _ := json.Marshal(g2.Snapshot())
	if !bytes.Equal(b1, b2) {
		t.Fatalf("gOA snapshot not lossless:\n%s\nvs\n%s", b1, b2)
	}
	if g2.Rack() != "rack-1" || g2.Limit() != 5000 {
		t.Fatalf("restored rack/limit = %s/%v", g2.Rack(), g2.Limit())
	}
	// Budget computation identical post-restore.
	ts := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	w1, w2 := g.BudgetsAt(ts), g2.BudgetsAt(ts)
	for name, v := range w1 {
		if w2[name] != v {
			t.Fatalf("budget[%s] = %v, want %v", name, w2[name], v)
		}
	}
}

func TestSnapshotIndependentOfLiveAgent(t *testing.T) {
	a, h := newTestSOA(400)
	exerciseSOA(a, h)
	snap := a.Snapshot()
	b1, _ := json.Marshal(snap)
	// Further activity on the live agent must not leak into the snapshot.
	for i := 30; i < 40; i++ {
		a.Tick(soaStart.Add(time.Duration(i) * time.Minute))
	}
	a.Request(soaStart.Add(2*time.Hour), ocReq("vm9", 1))
	b2, _ := json.Marshal(snap)
	if !bytes.Equal(b1, b2) {
		t.Fatal("snapshot aliases live agent state")
	}
}

// Guard: lifetime ledger restore roundtrips through JSON losslessly.
func TestCoreBudgetsStateRoundtrip(t *testing.T) {
	cb := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), 4, soaStart)
	cb.Core(0).Consume(2*time.Hour, false)
	cb.Core(1).Reserve(30 * time.Minute)
	cb.Advance(soaStart.Add(8 * 24 * time.Hour)) // cross an epoch
	cb.Core(2).Consume(time.Hour, false)

	snap := cb.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded lifetime.CoreBudgetsState
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	cb2 := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), 4, soaStart)
	if err := cb2.Restore(&decoded); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if cb2.Core(i).Remaining() != cb.Core(i).Remaining() ||
			cb2.Core(i).Reserved() != cb.Core(i).Reserved() ||
			!cb2.Core(i).EpochStart().Equal(cb.Core(i).EpochStart()) {
			t.Fatalf("core %d ledger mismatch", i)
		}
	}
	if err := cb2.Restore(&lifetime.CoreBudgetsState{Cores: decoded.Cores[:2]}); err == nil {
		t.Fatal("expected core-count mismatch error")
	}
}
