package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestLocalWIAggregatesAndReports(t *testing.T) {
	var gotInstance string
	var got []InstanceMetrics
	l := NewLocalWI("vm-1", 10*time.Second, func(inst string, m InstanceMetrics) {
		gotInstance = inst
		got = append(got, m)
	})

	now := wiNow
	l.Tick(now) // arms the interval
	for i := 0; i < 100; i++ {
		l.RecordLatency(float64(i + 1)) // 1..100 ms
		l.RecordUtil(0.5)
	}
	l.Tick(now.Add(10 * time.Second))
	if len(got) != 1 {
		t.Fatalf("reports = %d", len(got))
	}
	if gotInstance != "vm-1" {
		t.Fatalf("instance = %q", gotInstance)
	}
	m := got[0]
	if m.AvgMS != 50.5 {
		t.Fatalf("AvgMS = %v", m.AvgMS)
	}
	if m.P99MS < 90 || m.P99MS > 100 {
		t.Fatalf("P99MS = %v", m.P99MS)
	}
	if m.Util != 0.5 {
		t.Fatalf("Util = %v", m.Util)
	}
}

func TestLocalWIWindowsAreIndependent(t *testing.T) {
	var got []InstanceMetrics
	l := NewLocalWI("vm", 10*time.Second, func(_ string, m InstanceMetrics) {
		got = append(got, m)
	})
	now := wiNow
	l.Tick(now)
	l.RecordLatency(100)
	l.Tick(now.Add(10 * time.Second)) // first window: 100 ms
	l.RecordLatency(10)
	l.Tick(now.Add(20 * time.Second)) // second window: 10 ms
	if len(got) != 2 {
		t.Fatalf("reports = %d", len(got))
	}
	if got[0].AvgMS != 100 || got[1].AvgMS != 10 {
		t.Fatalf("window leakage: %+v", got)
	}
}

func TestLocalWIEmptyWindowHeartbeat(t *testing.T) {
	count := 0
	l := NewLocalWI("vm", 10*time.Second, func(string, InstanceMetrics) { count++ })
	l.Tick(wiNow)
	l.Tick(wiNow.Add(30 * time.Second)) // three intervals, no samples
	if count != 3 {
		t.Fatalf("heartbeats = %d, want 3", count)
	}
}

func TestLocalWIManualFlush(t *testing.T) {
	var got []InstanceMetrics
	l := NewLocalWI("vm", time.Hour, func(_ string, m InstanceMetrics) {
		got = append(got, m)
	})
	l.RecordLatency(42)
	l.Flush()
	if len(got) != 1 || got[0].AvgMS != 42 {
		t.Fatalf("manual flush: %+v", got)
	}
}

func TestLocalWIDefaultInterval(t *testing.T) {
	l := NewLocalWI("vm", 0, nil)
	if l.Interval != 15*time.Second {
		t.Fatalf("default interval = %v", l.Interval)
	}
	l.Flush() // nil Report must not panic
}

// TestLocalWIFeedsGlobalWI wires the full local→global pipeline: latency
// samples aggregated locally drive the global agent's overclock decision.
func TestLocalWIFeedsGlobalWI(t *testing.T) {
	mp := DefaultMetricPolicy()
	g := NewGlobalWI(100, &mp, nil, DefaultScaleOutConfig())
	l := NewLocalWI("vm-0", 10*time.Second, g.Observe)

	rng := rand.New(rand.NewSource(4))
	now := wiNow
	l.Tick(now)
	// A window of latencies hovering at 90% of the SLO.
	for i := 0; i < 200; i++ {
		l.RecordLatency(85 + rng.Float64()*10)
	}
	now = now.Add(10 * time.Second)
	l.Tick(now)
	d := g.Decide(now)
	if !d.Overclock["vm-0"] {
		t.Fatal("aggregated tail above scale-up threshold must trigger overclocking")
	}
}
