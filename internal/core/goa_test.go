package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

// monday9 is a weekday 9:00 instant.
var monday9 = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

// flatTemplate builds a WeekTemplate with a constant value.
func flatTemplate(v float64) *timeseries.WeekTemplate {
	day := func(kind timeseries.DayKind) *timeseries.DayTemplate {
		slots := make([]float64, 24)
		for i := range slots {
			slots[i] = v
		}
		return &timeseries.DayTemplate{Step: time.Hour, Kind: kind, Slots: slots}
	}
	return &timeseries.WeekTemplate{Weekday: day(timeseries.Weekdays), Weekend: day(timeseries.Weekends)}
}

// flatOC builds an OCTemplate with constant requested/granted core counts.
func flatOC(requested, granted float64) *predict.OCTemplate {
	return &predict.OCTemplate{
		Requested: flatTemplate(requested),
		Granted:   flatTemplate(granted),
	}
}

// TestPaperWorkedExample reproduces §IV-C's example: a 1.3 kW rack with
// Server-X at 400 W regular + 5 cores needing overclock and Server-Y at
// 300 W + 10 cores, 10 W per core, must get 600 W and 700 W.
func TestPaperWorkedExample(t *testing.T) {
	g := NewGOA("rack", 1300)
	g.SetProfile("X", ServerProfile{Power: flatTemplate(400), OC: flatOC(5, 0), OCCoreCost: 10})
	g.SetProfile("Y", ServerProfile{Power: flatTemplate(300), OC: flatOC(10, 0), OCCoreCost: 10})
	budgets := g.BudgetsAt(monday9)
	if math.Abs(budgets["X"]-600) > 1e-9 {
		t.Fatalf("Server-X budget = %v, want 600", budgets["X"])
	}
	if math.Abs(budgets["Y"]-700) > 1e-9 {
		t.Fatalf("Server-Y budget = %v, want 700", budgets["Y"])
	}
}

func TestBudgetsSumToLimitWithDemand(t *testing.T) {
	g := NewGOA("rack", 2000)
	g.SetProfile("a", ServerProfile{Power: flatTemplate(500), OC: flatOC(3, 0), OCCoreCost: 8})
	g.SetProfile("b", ServerProfile{Power: flatTemplate(700), OC: flatOC(6, 0), OCCoreCost: 8})
	budgets := g.BudgetsAt(monday9)
	sum := budgets["a"] + budgets["b"]
	if math.Abs(sum-2000) > 1e-9 {
		t.Fatalf("budgets sum = %v, want full limit", sum)
	}
	if budgets["b"] <= budgets["a"] {
		t.Fatal("server with more demand must get a larger budget")
	}
}

func TestOCPortionSeparatedFromRegular(t *testing.T) {
	// Server a reported 500 W total while running 10 granted OC cores at
	// 10 W each — its regular power is 400 W.
	g := NewGOA("rack", 1000)
	g.SetProfile("a", ServerProfile{Power: flatTemplate(500), OC: flatOC(0, 10), OCCoreCost: 10})
	g.SetProfile("b", ServerProfile{Power: flatTemplate(400), OC: flatOC(0, 0), OCCoreCost: 10})
	budgets := g.BudgetsAt(monday9)
	// No requested cores → even split of 1000-800 = 200 headroom.
	if math.Abs(budgets["a"]-500) > 1e-9 || math.Abs(budgets["b"]-500) > 1e-9 {
		t.Fatalf("budgets = %v", budgets)
	}
}

func TestEvenSplitWithoutDemand(t *testing.T) {
	g := NewGOA("rack", 1200)
	g.SetProfile("a", ServerProfile{Power: flatTemplate(300), OC: flatOC(0, 0), OCCoreCost: 10})
	g.SetProfile("b", ServerProfile{Power: flatTemplate(500), OC: flatOC(0, 0), OCCoreCost: 10})
	budgets := g.BudgetsAt(monday9)
	if math.Abs(budgets["a"]-500) > 1e-9 { // 300 + 400/2
		t.Fatalf("a = %v", budgets["a"])
	}
	if math.Abs(budgets["b"]-700) > 1e-9 {
		t.Fatalf("b = %v", budgets["b"])
	}
}

func TestOverloadedRackScalesProportionally(t *testing.T) {
	g := NewGOA("rack", 600)
	g.SetProfile("a", ServerProfile{Power: flatTemplate(400), OC: flatOC(5, 0), OCCoreCost: 10})
	g.SetProfile("b", ServerProfile{Power: flatTemplate(400), OC: flatOC(5, 0), OCCoreCost: 10})
	budgets := g.BudgetsAt(monday9)
	if math.Abs(budgets["a"]-300) > 1e-9 || math.Abs(budgets["b"]-300) > 1e-9 {
		t.Fatalf("overloaded budgets = %v", budgets)
	}
}

func TestBudgetsAtEmptyGOA(t *testing.T) {
	g := NewGOA("rack", 1000)
	if got := g.BudgetsAt(monday9); got != nil {
		t.Fatalf("empty gOA budgets = %v", got)
	}
}

func TestMissingPowerTemplateTreatedAsZero(t *testing.T) {
	g := NewGOA("rack", 1000)
	g.SetProfile("a", ServerProfile{OC: flatOC(2, 0), OCCoreCost: 10})
	budgets := g.BudgetsAt(monday9)
	if math.Abs(budgets["a"]-1000) > 1e-9 {
		t.Fatalf("budget = %v, want the whole headroom", budgets["a"])
	}
}

func TestBudgetTemplatesFollowTimeOfDay(t *testing.T) {
	// Server a needs overclocking only at 9:00; b only at 15:00.
	slots := make([]float64, 24)
	slots9 := append([]float64(nil), slots...)
	slots9[9] = 5
	slots15 := append([]float64(nil), slots...)
	slots15[15] = 5
	mk := func(s []float64) *predict.OCTemplate {
		day := &timeseries.DayTemplate{Step: time.Hour, Slots: s}
		return &predict.OCTemplate{
			Requested: &timeseries.WeekTemplate{Weekday: day, Weekend: day},
			Granted:   flatTemplate(0),
		}
	}
	g := NewGOA("rack", 1000)
	g.SetProfile("a", ServerProfile{Power: flatTemplate(300), OC: mk(slots9), OCCoreCost: 10})
	g.SetProfile("b", ServerProfile{Power: flatTemplate(300), OC: mk(slots15), OCCoreCost: 10})
	tpl := g.BudgetTemplates(time.Hour)
	at9 := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	at15 := time.Date(2023, 4, 10, 15, 0, 0, 0, time.UTC)
	if tpl["a"].At(at9) <= tpl["b"].At(at9) {
		t.Fatalf("at 9:00 a must dominate: a=%v b=%v", tpl["a"].At(at9), tpl["b"].At(at9))
	}
	if tpl["b"].At(at15) <= tpl["a"].At(at15) {
		t.Fatalf("at 15:00 b must dominate: a=%v b=%v", tpl["a"].At(at15), tpl["b"].At(at15))
	}
}

func TestEvenShare(t *testing.T) {
	g := NewGOA("rack", 1000)
	if got := g.EvenShare(4); got != 250 {
		t.Fatalf("EvenShare fallback = %v", got)
	}
	g.SetProfile("a", ServerProfile{Power: flatTemplate(1), OC: flatOC(0, 0)})
	g.SetProfile("b", ServerProfile{Power: flatTemplate(1), OC: flatOC(0, 0)})
	if got := g.EvenShare(0); got != 500 {
		t.Fatalf("EvenShare = %v", got)
	}
	if NewGOA("r", 100).EvenShare(0) != 100 {
		t.Fatal("EvenShare with no servers must return limit")
	}
}

func TestSetLimit(t *testing.T) {
	g := NewGOA("rack", 1000)
	g.SetLimit(800)
	if g.Limit() != 800 {
		t.Fatal("SetLimit failed")
	}
	if g.Rack() != "rack" {
		t.Fatal("Rack name wrong")
	}
}

// Property: with any non-negative profile values and positive demand, the
// heterogeneous budgets are non-negative and sum exactly to the rack limit
// when regular power fits; they never exceed the limit otherwise.
func TestBudgetsSumProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		if n > 12 {
			n = 12
		}
		g := NewGOA("rack", 10000)
		for i := 0; i < n; i++ {
			power := float64(raw[2*i]%800) + 50
			need := float64(raw[2*i+1] % 20)
			g.SetProfile(fmt.Sprintf("s%02d", i), ServerProfile{
				Power: flatTemplate(power), OC: flatOC(need, 0), OCCoreCost: 8,
			})
		}
		budgets := g.BudgetsAt(monday9)
		sum := 0.0
		sumRegular := 0.0
		for i := 0; i < n; i++ {
			b := budgets[fmt.Sprintf("s%02d", i)]
			if b < 0 {
				return false
			}
			sum += b
		}
		for i := 0; i < n; i++ {
			sumRegular += float64(raw[2*i]%800) + 50
		}
		if sumRegular <= 10000 {
			return math.Abs(sum-10000) < 1e-6
		}
		return sum <= 10000+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDatacenterAgentComposesWithGOA walks the full hierarchy: the
// datacenter agent splits its budget into rack limits, each rack's gOA
// splits its limit into server budgets, and conservation holds at every
// level.
func TestDatacenterAgentComposesWithGOA(t *testing.T) {
	dc := NewDatacenterAgent("dc", 3000)
	// Rack A draws 800 W with heavy overclock demand; rack B draws 900 W
	// with light demand.
	dc.SetRackProfile("rackA", ServerProfile{Power: flatTemplate(800), OC: flatOC(40, 0), OCCoreCost: 10})
	dc.SetRackProfile("rackB", ServerProfile{Power: flatTemplate(900), OC: flatOC(10, 0), OCCoreCost: 10})
	limits := dc.RackLimitsAt(monday9)
	if math.Abs(limits["rackA"]+limits["rackB"]-3000) > 1e-9 {
		t.Fatalf("rack limits don't conserve the DC budget: %v", limits)
	}
	// The demanding rack gets the larger share of headroom:
	// A = 800 + 1300*(400/500) = 1840, B = 900 + 1300*(100/500) = 1160.
	if math.Abs(limits["rackA"]-1840) > 1e-9 || math.Abs(limits["rackB"]-1160) > 1e-9 {
		t.Fatalf("rack limits = %v", limits)
	}

	// Feed rack A's new limit into its gOA; server budgets sum to it.
	ga := NewGOA("rackA", limits["rackA"])
	ga.SetProfile("s1", ServerProfile{Power: flatTemplate(500), OC: flatOC(30, 0), OCCoreCost: 10})
	ga.SetProfile("s2", ServerProfile{Power: flatTemplate(300), OC: flatOC(10, 0), OCCoreCost: 10})
	budgets := ga.BudgetsAt(monday9)
	if math.Abs(budgets["s1"]+budgets["s2"]-limits["rackA"]) > 1e-9 {
		t.Fatalf("server budgets don't conserve the rack limit: %v", budgets)
	}
	if budgets["s1"] <= budgets["s2"] {
		t.Fatal("demand skew must propagate to server budgets")
	}
	if dc.Budget() != 3000 {
		t.Fatalf("Budget = %v", dc.Budget())
	}
}
