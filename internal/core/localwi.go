package core

import (
	"time"

	"smartoclock/internal/stats"
)

// LocalWI is the Local Workload Intelligence agent deployed with each VM
// (§IV): it collects the VM's metrics of interest — request latencies and
// CPU utilization — aggregates them over a reporting interval, and ships
// InstanceMetrics to the service's global agent, exactly like a
// conventional autoscaling sidecar. It also relays the global agent's
// overclocking signal to the local sOA and reports rejections back.
//
// LocalWI is deliberately transport-agnostic: Report is a callback the
// caller wires to an agent.Transport send, a direct GlobalWI.Observe, or a
// test hook.
type LocalWI struct {
	// Instance names the VM this agent runs in.
	Instance string
	// Interval is the reporting cadence.
	Interval time.Duration
	// Report receives the aggregated metrics each interval.
	Report func(instance string, m InstanceMetrics)

	p99     *stats.P2Quantile
	latSum  float64
	latN    int
	utilSum float64
	utilN   int

	nextFlush time.Time
	started   bool
}

// NewLocalWI creates a local agent for the named instance reporting every
// interval through report.
func NewLocalWI(instance string, interval time.Duration, report func(string, InstanceMetrics)) *LocalWI {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	l := &LocalWI{Instance: instance, Interval: interval, Report: report}
	l.reset()
	return l
}

func (l *LocalWI) reset() {
	l.p99 = stats.NewP2Quantile(0.99)
	l.latSum, l.latN = 0, 0
	l.utilSum, l.utilN = 0, 0
}

// RecordLatency records one request latency observation in milliseconds.
func (l *LocalWI) RecordLatency(ms float64) {
	l.p99.Add(ms)
	l.latSum += ms
	l.latN++
}

// RecordUtil records one CPU utilization observation in [0,1].
func (l *LocalWI) RecordUtil(u float64) {
	l.utilSum += u
	l.utilN++
}

// Tick advances the agent's clock; when a reporting interval has elapsed
// the aggregated metrics are flushed to Report and the window resets.
func (l *LocalWI) Tick(now time.Time) {
	if !l.started {
		l.started = true
		l.nextFlush = now.Add(l.Interval)
		return
	}
	for !now.Before(l.nextFlush) {
		l.flush()
		l.nextFlush = l.nextFlush.Add(l.Interval)
	}
}

// flush emits the current window (empty windows report zero metrics so the
// global agent still sees a heartbeat).
func (l *LocalWI) flush() {
	m := InstanceMetrics{}
	if l.latN > 0 {
		m.P99MS = l.p99.Value()
		m.AvgMS = l.latSum / float64(l.latN)
	}
	if l.utilN > 0 {
		m.Util = l.utilSum / float64(l.utilN)
	}
	if l.Report != nil {
		l.Report(l.Instance, m)
	}
	l.reset()
}

// Flush forces an immediate report of the current window, regardless of
// the interval (used on shutdown).
func (l *LocalWI) Flush() { l.flush() }
