package core

import (
	"sort"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

// ServerProfile is what each sOA periodically reports to the gOA: its power
// template, its overclock template and its per-core overclock power cost.
type ServerProfile struct {
	// Power is the server's power template (draw including any overclock
	// power it ran with).
	Power *timeseries.WeekTemplate
	// OC is the overclock template: requested/granted cores per slot.
	OC *predict.OCTemplate
	// OCCoreCost is the modeled extra watts per overclocked core at high
	// utilization, used to separate regular from overclock power.
	OCCoreCost float64
}

// GOA is the Global Overclocking Agent for one rack: it aggregates server
// profiles and splits the rack power limit into heterogeneous per-server
// budgets (§IV-C).
type GOA struct {
	rack     string
	limit    float64
	profiles map[string]ServerProfile

	// obs, when non-nil, holds resolved metric handles (see Instrument in
	// obs.go).
	obs *goaObs

	// prov, when non-nil, receives budget-broadcast provenance records;
	// lastProfileSpan is the most recent profile message that shaped them
	// (see provenance.go).
	prov            *causal.Recorder
	lastProfileSpan causal.SpanID
}

// NewGOA creates a gOA for the named rack with the given power limit.
func NewGOA(rack string, limitWatts float64) *GOA {
	return &GOA{rack: rack, limit: limitWatts, profiles: make(map[string]ServerProfile)}
}

// Rack returns the rack name.
func (g *GOA) Rack() string { return g.rack }

// Limit returns the rack power limit in watts.
func (g *GOA) Limit() float64 { return g.limit }

// SetLimit updates the rack power limit (e.g. for power-constrained
// experiments).
func (g *GOA) SetLimit(watts float64) { g.limit = watts }

// SetProfile installs or replaces a server's reported profile.
func (g *GOA) SetProfile(server string, p ServerProfile) {
	g.profiles[server] = p
}

// Servers returns the profiled server names, sorted for determinism.
func (g *GOA) Servers() []string {
	names := make([]string, 0, len(g.profiles))
	for name := range g.profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BudgetsAt computes the heterogeneous per-server power budgets for the
// time-of-day of ts, in three phases (§IV-C):
//
//  1. separate each server's template power into regular and overclock
//     portions using the granted-core counts from its overclock template;
//  2. assign each server its regular power as the initial budget;
//  3. split the remaining rack headroom in proportion to each server's
//     overclock need (requested cores × per-core cost).
//
// When the regular power alone exceeds the limit, budgets are scaled down
// proportionally. With no overclock demand anywhere the headroom is split
// evenly (the fair-share fallback).
func (g *GOA) BudgetsAt(ts time.Time) map[string]float64 {
	names := g.Servers()
	if len(names) == 0 {
		return nil
	}
	regular := make(map[string]float64, len(names))
	need := make(map[string]float64, len(names))
	var sumRegular, sumNeed float64
	for _, name := range names {
		p := g.profiles[name]
		total := 0.0
		if p.Power != nil {
			total = p.Power.At(ts)
		}
		ocPortion := p.OC.GrantedAt(ts) * p.OCCoreCost
		reg := total - ocPortion
		if reg < 0 {
			reg = 0
		}
		regular[name] = reg
		sumRegular += reg
		n := p.OC.RequestedAt(ts) * p.OCCoreCost
		if n < 0 {
			n = 0
		}
		need[name] = n
		sumNeed += n
	}

	budgets := make(map[string]float64, len(names))
	if sumRegular >= g.limit {
		// No headroom: scale regular demand into the limit.
		for _, name := range names {
			if sumRegular > 0 {
				budgets[name] = g.limit * regular[name] / sumRegular
			} else {
				budgets[name] = g.limit / float64(len(names))
			}
		}
		g.obsBudgets(g.limit)
		return budgets
	}
	headroom := g.limit - sumRegular
	sum := 0.0
	for _, name := range names {
		extra := headroom / float64(len(names))
		if sumNeed > 0 {
			extra = headroom * need[name] / sumNeed
		}
		budgets[name] = regular[name] + extra
		sum += budgets[name]
	}
	g.obsBudgets(sum)
	return budgets
}

// BudgetTemplates evaluates BudgetsAt across every time-of-day slot and
// returns one budget WeekTemplate per server — the artifact the gOA pushes
// to each sOA on the (e.g. weekly) assignment cadence. step is the slot
// width, typically the profile recording step.
func (g *GOA) BudgetTemplates(step time.Duration) map[string]*timeseries.WeekTemplate {
	names := g.Servers()
	if len(names) == 0 {
		return nil
	}
	slots := int(24 * time.Hour / step)
	if slots < 1 {
		slots = 1
	}
	out := make(map[string]*timeseries.WeekTemplate, len(names))
	for _, name := range names {
		out[name] = &timeseries.WeekTemplate{
			Weekday: &timeseries.DayTemplate{Step: step, Kind: timeseries.Weekdays, Slots: make([]float64, slots)},
			Weekend: &timeseries.DayTemplate{Step: step, Kind: timeseries.Weekends, Slots: make([]float64, slots)},
		}
	}
	// Reference days: a Monday and a Saturday (any instances work — only
	// time-of-day and weekday-kind matter).
	monday := time.Date(2023, 4, 10, 0, 0, 0, 0, time.UTC)
	saturday := time.Date(2023, 4, 15, 0, 0, 0, 0, time.UTC)
	for i := 0; i < slots; i++ {
		offset := time.Duration(i) * step
		wk := g.BudgetsAt(monday.Add(offset))
		we := g.BudgetsAt(saturday.Add(offset))
		for _, name := range names {
			out[name].Weekday.Slots[i] = wk[name]
			out[name].Weekend.Slots[i] = we[name]
		}
	}
	return out
}

// EvenShare returns the fair-share budget: limit divided by the number of
// profiled servers (or the provided count when no profiles exist yet).
func (g *GOA) EvenShare(fallbackServers int) float64 {
	n := len(g.profiles)
	if n == 0 {
		n = fallbackServers
	}
	if n <= 0 {
		return g.limit
	}
	return g.limit / float64(n)
}

// DatacenterAgent applies the same heterogeneous three-phase split one
// level up the power-delivery hierarchy (§II): a datacenter (or row)
// budget is divided across rack limits in proportion to each rack's
// regular draw and overclocking demand. The algorithm composes — the
// resulting rack limits feed each rack's gOA, whose per-server budgets
// again sum to its (new) limit.
type DatacenterAgent struct {
	goa *GOA
}

// NewDatacenterAgent creates an agent managing budgetWatts across racks.
func NewDatacenterAgent(name string, budgetWatts float64) *DatacenterAgent {
	return &DatacenterAgent{goa: NewGOA(name, budgetWatts)}
}

// SetRackProfile installs one rack's aggregate profile: its power template
// (sum of server templates or the rack recorder) and overclock template
// (summed requested/granted cores), with the fleet's per-core cost.
func (d *DatacenterAgent) SetRackProfile(rack string, p ServerProfile) {
	d.goa.SetProfile(rack, p)
}

// RackLimitsAt returns the heterogeneous rack power limits for the
// time-of-day of ts.
func (d *DatacenterAgent) RackLimitsAt(ts time.Time) map[string]float64 {
	return d.goa.BudgetsAt(ts)
}

// Budget returns the managed datacenter budget in watts.
func (d *DatacenterAgent) Budget() float64 { return d.goa.Limit() }
