package core

import (
	"fmt"
	"testing"
	"time"
)

// newBigUtilWI builds a deployment-level-util WI tracking n instances in
// steady state (no pending rejections, no overclocking pressure).
func newBigUtilWI(n int) *GlobalWI {
	up := DefaultUtilPolicy()
	w := NewGlobalWI(100, nil, nil, DefaultScaleOutConfig())
	w.Util = &up
	for i := 0; i < n; i++ {
		w.Observe(fmt.Sprintf("i%04d", i), InstanceMetrics{P99MS: 20, Util: 0.3})
	}
	return w
}

// TestDecideAllocsBounded guards Decide's per-call allocation count at a
// flat ceiling independent of deployment churn: the name slice, the sort,
// and the returned map. A regression that allocates inside the per-instance
// loop multiplies across deployments x decision intervals.
func TestDecideAllocsBounded(t *testing.T) {
	w := newBigUtilWI(256)
	now := wiNow
	w.Decide(now)
	allocs := testing.AllocsPerRun(50, func() {
		now = now.Add(time.Second)
		w.Decide(now)
	})
	// sortedInstances (slice + sort.Strings interface) and the Directive's
	// copied map are the only expected allocations.
	if allocs > 8 {
		t.Fatalf("Decide allocates %.1f objects per call for 256 instances, want <= 8", allocs)
	}
}

// BenchmarkGlobalWIDecide pins the per-decision cost at deployment scale.
// The deployment-mean utilization is computed once per decision, not once
// per instance; recomputing it inside the loop made this O(instances²).
func BenchmarkGlobalWIDecide(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("instances=%d", n), func(b *testing.B) {
			w := newBigUtilWI(n)
			now := wiNow
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Second)
				w.Decide(now)
			}
		})
	}
}
