package core

import (
	"time"
)

// Reservation is an admitted future overclocking window: power and
// overclock-time budget are set aside ahead of time so a schedule-based
// workload gets a predictable overclocking experience (§IV-B). The
// reservation is soft on the power side — outside workloads may still take
// the power, in which case the sOA adjusts and the WI layer is warned via
// HonorCheck.
type Reservation struct {
	VM        string
	Cores     []int
	Start     time.Time
	End       time.Time
	TargetMHz int
}

// Duration returns the reserved window length.
func (r *Reservation) Duration() time.Duration { return r.End.Sub(r.Start) }

// ReserveWindow performs ahead-of-time admission for a schedule-based
// request over [start, start+duration):
//
//  1. lifetime: cores with enough epoch budget are selected and that
//     budget is reserved immediately (unused budget may still serve
//     unscheduled overclocking, §IV-B);
//  2. power: the predicted baseline plus the overclock delta must fit the
//     assigned budget at every profile slot of the window.
//
// On success the caller holds the Reservation and, at window start,
// submits a Request with Priority PriorityScheduled and PreferredCores set
// to the reservation's cores. On failure the decision carries the reason
// so the WI layer can take corrective action (e.g. scale out before the
// window).
func (a *SOA) ReserveWindow(now, start time.Time, duration time.Duration, req Request) (Decision, *Reservation) {
	if err := req.Validate(); err != nil || duration <= 0 || start.Before(now) {
		a.rejected++
		return Decision{Reason: RejectInvalid}, nil
	}
	target := req.TargetMHz
	if target > a.host.MaxOCMHz() {
		target = a.host.MaxOCMHz()
	}

	// Lifetime: select cores and reserve their budget for the window.
	a.budgets.Advance(now)
	cores := a.budgets.FindCoresFiltered(req.Cores, duration, a.cfg.WearGate)
	if cores == nil {
		a.rejected++
		a.notifyReject(req.VM, RejectLifetime)
		return Decision{Reason: RejectLifetime}, nil
	}
	for i, c := range cores {
		if !a.budgets.Core(c).Reserve(duration) {
			for _, cc := range cores[:i] {
				a.budgets.Core(cc).ReleaseReservation(duration)
			}
			a.rejected++
			a.notifyReject(req.VM, RejectLifetime)
			return Decision{Reason: RejectLifetime}, nil
		}
	}

	res := &Reservation{
		VM: req.VM, Cores: cores,
		Start: start, End: start.Add(duration), TargetMHz: target,
	}
	// Power: every slot of the window must absorb the overclock.
	if !a.windowPowerFits(res) {
		a.releaseReservationBudget(res)
		a.rejected++
		a.notifyReject(req.VM, RejectPower)
		return Decision{Reason: RejectPower}, nil
	}
	return Decision{Granted: true, Cores: cores}, res
}

// windowPowerFits checks the reservation's power across its window using
// the server's own power template and the assigned budget template.
func (a *SOA) windowPowerFits(res *Reservation) bool {
	delta := a.host.OCDeltaWatts(len(res.Cores), res.TargetMHz, a.cfg.AdmissionUtil)
	step := a.cfg.ProfileStep
	for ts := res.Start; ts.Before(res.End); ts = ts.Add(step) {
		baseline := a.staticBudget // worst case without a template: assume full budget use
		if a.powerTemplate != nil {
			baseline = a.powerTemplate.At(ts)
		}
		if baseline+delta > a.BudgetAt(ts) {
			return false
		}
	}
	return true
}

// releaseReservationBudget returns the reserved per-core budget.
func (a *SOA) releaseReservationBudget(res *Reservation) {
	for _, c := range res.Cores {
		a.budgets.Core(c).ReleaseReservation(res.Duration())
	}
}

// CancelReservation releases a reservation's budget before (or instead of)
// its window.
func (a *SOA) CancelReservation(res *Reservation) {
	if res == nil {
		return
	}
	a.releaseReservationBudget(res)
}

// HonorCheck re-evaluates whether a pending reservation can still be
// honored — budgets may have been reassigned or predictions revised since
// admission. When it reports false the WI layer should take corrective
// action (scale out) before the window starts: "SmartOClock can take
// corrective actions, such as scale-out, if it is unable to honor a
// reservation" (§IV).
func (a *SOA) HonorCheck(res *Reservation) bool {
	if res == nil {
		return false
	}
	return a.windowPowerFits(res)
}

// StartReserved converts a reservation into an active session at its
// window start. The per-core budget was reserved at admission time, so no
// further admission runs: the whole point of the reservation is the
// predictable experience (§IV-B). The running session draws down the
// reserved budget.
func (a *SOA) StartReserved(now time.Time, res *Reservation) Decision {
	if res == nil || now.Before(res.Start) || !now.Before(res.End) {
		a.rejected++
		return Decision{Reason: RejectInvalid}
	}
	if _, exists := a.sessions[res.VM]; exists {
		a.rejected++
		return Decision{Reason: RejectDuplicate}
	}
	a.slotRequested += len(res.Cores)
	return a.start(now, Request{
		VM:       res.VM,
		Cores:    len(res.Cores),
		Priority: PriorityScheduled,
	}, res.TargetMHz, res.Cores, nil)
}
