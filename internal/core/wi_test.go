package core

import (
	"testing"
	"time"
)

var wiNow = time.Date(2023, 4, 10, 9, 30, 0, 0, time.UTC) // Monday 9:30

func newMetricWI() *GlobalWI {
	mp := DefaultMetricPolicy()
	return NewGlobalWI(100, &mp, nil, DefaultScaleOutConfig())
}

func TestMetricPolicyStartsAndStopsOC(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 85}) // ≥ 80% of SLO
	d := w.Decide(wiNow)
	if !d.Overclock["i0"] {
		t.Fatal("overclock not triggered at 85% of SLO")
	}
	// Hysteresis: between the thresholds it stays on.
	w.Observe("i0", InstanceMetrics{P99MS: 60})
	d = w.Decide(wiNow.Add(time.Second))
	if !d.Overclock["i0"] {
		t.Fatal("overclock dropped inside hysteresis band")
	}
	// Below scale-down, but within the minimum on-time: stays on.
	w.Observe("i0", InstanceMetrics{P99MS: 30})
	d = w.Decide(wiNow.Add(2 * time.Second))
	if !d.Overclock["i0"] {
		t.Fatal("overclock released before OCMinOn")
	}
	// After the minimum on-time it releases.
	d = w.Decide(wiNow.Add(OCMinOn + 2*time.Second))
	if d.Overclock["i0"] {
		t.Fatal("overclock not released at 30% of SLO")
	}
}

func TestMetricScaleOutAtThreshold(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 120}) // ≥ 105% of SLO
	d := w.Decide(wiNow)
	// Overclocking engages first; scale-out waits for the grace period.
	if !d.Overclock["i0"] || d.Instances != 1 {
		t.Fatalf("first decision = %+v, want OC on, 1 instance", d)
	}
	w.Observe("i0", InstanceMetrics{P99MS: 120}) // still over after grace
	w.Decide(wiNow.Add(OCGrace + time.Second))   // starts the sustain clock
	d = w.Decide(wiNow.Add(OCGrace + ScaleOutSustain + 2*time.Second))
	if d.Instances != 2 {
		t.Fatalf("instances = %d, want scale-out to 2", d.Instances)
	}
	if w.ScaleOuts() != 1 {
		t.Fatalf("scaleOuts = %d", w.ScaleOuts())
	}
}

func TestScaleOutCooldown(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 120})
	w.Decide(wiNow)                                                     // OC engages, sustain clock starts
	w.Decide(wiNow.Add(OCGrace + time.Second))                          // sustain continues
	d := w.Decide(wiNow.Add(OCGrace + ScaleOutSustain + 2*time.Second)) // first scale-out
	if d.Instances != 2 {
		t.Fatalf("instances = %d, want first scale-out", d.Instances)
	}
	w.Observe("i0", InstanceMetrics{P99MS: 120})
	d = w.Decide(wiNow.Add(OCGrace + ScaleOutSustain + 3*time.Second)) // within cooldown
	if d.Instances != 2 {
		t.Fatalf("cooldown violated: %d instances", d.Instances)
	}
	d = w.Decide(wiNow.Add(OCGrace + ScaleOutSustain + 2*time.Second + 3*time.Minute)) // past cooldown
	if d.Instances != 3 {
		t.Fatalf("instances = %d, want 3 after cooldown", d.Instances)
	}
}

func TestScaleOutBoundedByMax(t *testing.T) {
	cfg := DefaultScaleOutConfig()
	cfg.MaxInstances = 2
	mp := DefaultMetricPolicy()
	w := NewGlobalWI(100, &mp, nil, cfg)
	now := wiNow
	w.Observe("i0", InstanceMetrics{P99MS: 200})
	w.Decide(now) // engage OC, start sustain clock
	for i := 0; i < 5; i++ {
		w.Observe("i0", InstanceMetrics{P99MS: 200})
		now = now.Add(cfg.Cooldown + OCGrace + ScaleOutSustain + time.Second)
		if d := w.Decide(now); d.Instances > 2 {
			t.Fatalf("exceeded max instances: %d", d.Instances)
		}
	}
}

func TestRejectionTriggersCorrectiveScaleOut(t *testing.T) {
	w := newMetricWI()
	w.Scale.RejectThreshold = 1
	w.Observe("i0", InstanceMetrics{P99MS: 85})
	w.Decide(wiNow)
	w.ReportRejection("i0", RejectPower)
	d := w.Decide(wiNow.Add(time.Second))
	if d.Instances != 2 {
		t.Fatalf("rejection did not scale out: %d", d.Instances)
	}
	if d.Overclock["i0"] {
		t.Fatal("rejected instance must not be marked overclocked")
	}
	if w.Rejections() != 1 {
		t.Fatalf("rejections = %d", w.Rejections())
	}
}

func TestProactiveExhaustionScaleOut(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 85})
	w.Decide(wiNow)
	w.ReportExhaustion(ExhaustOCBudget, wiNow.Add(10*time.Minute))
	d := w.Decide(wiNow.Add(time.Second))
	if d.Instances != 2 {
		t.Fatalf("proactive scale-out missing: %d", d.Instances)
	}
}

func TestReactivePolicyIgnoresExhaustion(t *testing.T) {
	cfg := DefaultScaleOutConfig()
	cfg.Proactive = false
	mp := DefaultMetricPolicy()
	w := NewGlobalWI(100, &mp, nil, cfg)
	w.Observe("i0", InstanceMetrics{P99MS: 50})
	w.ReportExhaustion(ExhaustOCBudget, wiNow.Add(10*time.Minute))
	d := w.Decide(wiNow)
	if d.Instances != 1 {
		t.Fatalf("reactive policy scaled out on exhaustion: %d", d.Instances)
	}
}

func TestScaleInWhenIdle(t *testing.T) {
	w := newMetricWI()
	// Scale out first (OC engages, then grace+sustain pass while over).
	w.Observe("i0", InstanceMetrics{P99MS: 120})
	w.Decide(wiNow)
	w.Decide(wiNow.Add(OCGrace + time.Second))
	w.Decide(wiNow.Add(OCGrace + ScaleOutSustain + 2*time.Second))
	// Then everything goes quiet (below scale-in threshold, OC released
	// after its minimum on-time).
	w.Observe("i0", InstanceMetrics{P99MS: 10})
	w.Observe("i1", InstanceMetrics{P99MS: 10})
	w.Decide(wiNow.Add(OCMinOn + 2*time.Minute)) // releases OC
	d := w.Decide(wiNow.Add(OCMinOn + 5*time.Minute))
	if d.Instances != 1 {
		t.Fatalf("did not scale in: %d", d.Instances)
	}
	if w.ScaleIns() != 1 {
		t.Fatalf("scaleIns = %d", w.ScaleIns())
	}
}

func TestNoScaleInWhileOCActive(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 120})
	w.Decide(wiNow)
	w.Decide(wiNow.Add(OCGrace + time.Second))
	w.Decide(wiNow.Add(OCGrace + ScaleOutSustain + 2*time.Second)) // scaled to 2
	// Keep one instance overclocked while the other is quiet: the
	// deployment must not scale in.
	w.Observe("i0", InstanceMetrics{P99MS: 10})
	w.Observe("i1", InstanceMetrics{P99MS: 85})
	d := w.Decide(wiNow.Add(10 * time.Minute))
	if d.Instances < 2 {
		t.Fatal("scaled in while an instance is overclocked")
	}
}

func TestSchedulePolicyWindow(t *testing.T) {
	sp := &SchedulePolicy{Windows: []ScheduleWindow{{StartHour: 9, EndHour: 11, WeekdaysOnly: true}}}
	w := NewGlobalWI(100, nil, sp, DefaultScaleOutConfig())
	w.Observe("i0", InstanceMetrics{P99MS: 10})
	d := w.Decide(wiNow) // Monday 9:30, inside window
	if !d.Overclock["i0"] {
		t.Fatal("schedule window did not trigger overclock")
	}
	d = w.Decide(wiNow.Add(3 * time.Hour)) // 12:30, outside
	if d.Overclock["i0"] {
		t.Fatal("overclock persisted outside window")
	}
	sat := time.Date(2023, 4, 15, 9, 30, 0, 0, time.UTC)
	d = w.Decide(sat)
	if d.Overclock["i0"] {
		t.Fatal("weekday-only window fired on Saturday")
	}
}

func TestCombinedMetricAndSchedule(t *testing.T) {
	mp := DefaultMetricPolicy()
	sp := &SchedulePolicy{Windows: []ScheduleWindow{{StartHour: 9, EndHour: 10}}}
	w := NewGlobalWI(100, &mp, sp, DefaultScaleOutConfig())
	// Outside the window but tail is high: metric side triggers.
	w.Observe("i0", InstanceMetrics{P99MS: 90})
	d := w.Decide(wiNow.Add(5 * time.Hour))
	if !d.Overclock["i0"] {
		t.Fatal("metric trigger must work outside schedule windows")
	}
}

func TestForget(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 90})
	w.Decide(wiNow)
	w.Forget("i0")
	d := w.Decide(wiNow.Add(time.Second))
	if _, ok := d.Overclock["i0"]; ok {
		t.Fatal("forgotten instance still present")
	}
}

func TestScheduleWindowContains(t *testing.T) {
	at := func(day, hour, min int) time.Time {
		return time.Date(2023, 4, day, hour, min, 0, 0, time.UTC) // Apr 10 2023 = Monday
	}
	tests := []struct {
		name string
		win  ScheduleWindow
		ts   time.Time
		want bool
	}{
		{"same-day inside", ScheduleWindow{StartHour: 22, EndHour: 23}, at(10, 22, 30), true},
		{"same-day end exclusive", ScheduleWindow{StartHour: 22, EndHour: 23}, at(10, 23, 0), false},
		{"same-day before start", ScheduleWindow{StartHour: 22, EndHour: 23}, at(10, 21, 59), false},
		// Overnight window 22:00 → 02:00: both arms must match.
		{"overnight evening arm", ScheduleWindow{StartHour: 22, EndHour: 2}, at(10, 22, 0), true},
		{"overnight late evening", ScheduleWindow{StartHour: 22, EndHour: 2}, at(10, 23, 59), true},
		{"overnight morning arm", ScheduleWindow{StartHour: 22, EndHour: 2}, at(10, 0, 0), true},
		{"overnight morning edge", ScheduleWindow{StartHour: 22, EndHour: 2}, at(10, 1, 59), true},
		{"overnight end exclusive", ScheduleWindow{StartHour: 22, EndHour: 2}, at(10, 2, 0), false},
		{"overnight midday gap", ScheduleWindow{StartHour: 22, EndHour: 2}, at(10, 12, 0), false},
		// Weekday filter applies to the queried instant's own weekday: the
		// Friday-evening arm fires, the Saturday-morning arm does not.
		{"weekday overnight Friday evening", ScheduleWindow{StartHour: 22, EndHour: 2, WeekdaysOnly: true}, at(14, 23, 0), true},
		{"weekday overnight Saturday morning", ScheduleWindow{StartHour: 22, EndHour: 2, WeekdaysOnly: true}, at(15, 1, 0), false},
		{"weekday same-day Saturday", ScheduleWindow{StartHour: 9, EndHour: 17, WeekdaysOnly: true}, at(15, 10, 0), false},
		{"weekday same-day Monday", ScheduleWindow{StartHour: 9, EndHour: 17, WeekdaysOnly: true}, at(10, 10, 0), true},
		// Degenerate equal bounds: empty window.
		{"equal bounds empty", ScheduleWindow{StartHour: 9, EndHour: 9}, at(10, 9, 0), false},
	}
	for _, tc := range tests {
		if got := tc.win.Contains(tc.ts); got != tc.want {
			t.Errorf("%s: Contains(%v) = %v, want %v", tc.name, tc.ts, got, tc.want)
		}
	}
}

func TestForgetPurgesAllState(t *testing.T) {
	w := newMetricWI()
	w.Observe("i0", InstanceMetrics{P99MS: 90})
	w.Observe("i1", InstanceMetrics{P99MS: 90})
	w.Decide(wiNow) // engages OC on both → ocStartAt populated
	if _, ok := w.ocStartAt["i0"]; !ok {
		t.Fatal("test setup: i0 not engaged")
	}
	// A rejection parks i0 in rejectPending until the next Decide.
	w.ReportRejection("i0", RejectPower)
	w.Forget("i0")
	if _, ok := w.ocStartAt["i0"]; ok {
		t.Fatal("Forget leaked ocStartAt entry")
	}
	for _, name := range w.rejectPending {
		if name == "i0" {
			t.Fatal("Forget leaked rejectPending entry")
		}
	}
	w.Decide(wiNow.Add(time.Second))
	if _, ok := w.rejectHold["i0"]; ok {
		t.Fatal("forgotten instance resurrected into rejectHold by Decide")
	}
	if _, ok := w.instances["i0"]; ok {
		t.Fatal("Forget left instance metrics")
	}
	if _, ok := w.ocActive["i0"]; ok {
		t.Fatal("Forget left ocActive entry")
	}
	// The surviving instance's pending rejection must still be stamped.
	w.ReportRejection("i1", RejectPower)
	w.Decide(wiNow.Add(2 * time.Second))
	if _, ok := w.rejectHold["i1"]; !ok {
		t.Fatal("surviving instance lost its reject hold")
	}
}

func TestWIConfigClamps(t *testing.T) {
	w := NewGlobalWI(100, nil, nil, ScaleOutConfig{MinInstances: 0, MaxInstances: -1, StepInstances: 0})
	if w.Scale.MinInstances != 1 || w.Scale.MaxInstances != 1 || w.Scale.StepInstances != 1 {
		t.Fatalf("config not repaired: %+v", w.Scale)
	}
}

func TestUtilPolicyDeploymentLevel(t *testing.T) {
	up := DefaultUtilPolicy()
	w := NewGlobalWI(100, nil, nil, DefaultScaleOutConfig())
	w.Util = &up
	// One hot VM (80%) and one cold VM (10%): deployment mean 45% stays
	// under the 70% trigger — the paper's Fig 4 scenario where
	// overclocking the hot VM would be wasted.
	w.Observe("hot", InstanceMetrics{Util: 0.80})
	w.Observe("cold", InstanceMetrics{Util: 0.10})
	d := w.Decide(wiNow)
	if d.Overclock["hot"] || d.Overclock["cold"] {
		t.Fatal("deployment-level policy must not overclock while under target")
	}
	// Deployment-wide pressure triggers it.
	w.Observe("hot", InstanceMetrics{Util: 0.90})
	w.Observe("cold", InstanceMetrics{Util: 0.60})
	d = w.Decide(wiNow.Add(time.Second))
	if !d.Overclock["hot"] || !d.Overclock["cold"] {
		t.Fatal("deployment over target must overclock")
	}
	// And releases once the deployment cools (after the min-on hold).
	w.Observe("hot", InstanceMetrics{Util: 0.40})
	w.Observe("cold", InstanceMetrics{Util: 0.20})
	d = w.Decide(wiNow.Add(OCMinOn + 2*time.Second))
	if d.Overclock["hot"] {
		t.Fatal("deployment under release threshold must stop overclocking")
	}
}

func TestUtilAndMetricCombined(t *testing.T) {
	mp := DefaultMetricPolicy()
	up := DefaultUtilPolicy()
	w := NewGlobalWI(100, &mp, nil, DefaultScaleOutConfig())
	w.Util = &up
	// Latency pressure triggers even when utilization is low (an
	// IPC-insensitive proxy would have missed this, §III-Q1).
	w.Observe("i0", InstanceMetrics{P99MS: 90, Util: 0.3})
	d := w.Decide(wiNow)
	if !d.Overclock["i0"] {
		t.Fatal("latency trigger must fire regardless of utilization")
	}
	// Release requires BOTH latency and utilization to have recovered.
	w.Observe("i0", InstanceMetrics{P99MS: 20, Util: 0.75})
	d = w.Decide(wiNow.Add(OCMinOn + time.Second))
	if !d.Overclock["i0"] {
		t.Fatal("high utilization must hold the overclock despite low latency")
	}
	w.Observe("i0", InstanceMetrics{P99MS: 20, Util: 0.30})
	d = w.Decide(wiNow.Add(OCMinOn + 2*time.Second))
	if d.Overclock["i0"] {
		t.Fatal("overclock must release when both signals recover")
	}
}
