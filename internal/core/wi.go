package core

import (
	"sort"
	"time"
)

// InstanceMetrics is what a Local Workload Intelligence agent collects from
// its VM each interval and ships to the service's global agent (§IV-A).
type InstanceMetrics struct {
	P99MS float64
	AvgMS float64
	Util  float64
}

// MetricPolicy triggers overclocking from application metrics: scale up
// (start overclocking) when the tail approaches the SLO, scale down (stop)
// when it recovers. The scale-up threshold sits before the scale-out
// threshold so overclocking absorbs spikes and scale-out remains the
// fallback (§IV-D).
type MetricPolicy struct {
	// ScaleUpFrac of the SLO at which overclocking starts.
	ScaleUpFrac float64
	// ScaleDownFrac of the SLO at which overclocking stops.
	ScaleDownFrac float64
	// ScaleOutFrac of the SLO at which the deployment scales out even if
	// overclocked.
	ScaleOutFrac float64
}

// DefaultMetricPolicy overclocks at 80% of the SLO, releases at 50%, and
// scales out at 105%. The release threshold sits above the overclocked
// steady state under elevated-but-not-peak load, so sessions run at peak
// duty rather than continuously — conserving the lifetime budget (§IV-A).
func DefaultMetricPolicy() MetricPolicy {
	return MetricPolicy{ScaleUpFrac: 0.8, ScaleDownFrac: 0.5, ScaleOutFrac: 1.05}
}

// UtilPolicy triggers overclocking from resource utilization instead of
// (or in addition to) application latency — §IV-A: "workloads can use
// application metrics (e.g., tail latency, queue length) or resource
// utilization (e.g., CPU, network) to trigger overclocking". WebConf-style
// services provision on deployment-level CPU utilization.
type UtilPolicy struct {
	// ScaleUpUtil is the deployment mean utilization at which overclocking
	// starts.
	ScaleUpUtil float64
	// ScaleDownUtil is the utilization at which it stops.
	ScaleDownUtil float64
}

// DefaultUtilPolicy overclocks at 70% deployment utilization, releasing at
// 45%.
func DefaultUtilPolicy() UtilPolicy {
	return UtilPolicy{ScaleUpUtil: 0.7, ScaleDownUtil: 0.45}
}

// ScheduleWindow is a daily overclocking window for schedule-based
// policies (e.g. 9-10 AM local time, §IV-A). StartHour > EndHour means the
// window wraps past midnight: {22, 2} covers 22:00-23:59 and 00:00-01:59.
type ScheduleWindow struct {
	StartHour, EndHour int
	// WeekdaysOnly restricts the window to Monday-Friday. The filter tests
	// the weekday of the queried instant itself, so an overnight window
	// starting Friday evening does not extend into Saturday morning.
	WeekdaysOnly bool
}

// Contains reports whether ts falls inside the window.
func (w ScheduleWindow) Contains(ts time.Time) bool {
	if w.WeekdaysOnly {
		wd := ts.Weekday()
		if wd == time.Saturday || wd == time.Sunday {
			return false
		}
	}
	h := ts.Hour()
	if w.StartHour > w.EndHour {
		// Overnight: the window spans midnight.
		return h >= w.StartHour || h < w.EndHour
	}
	return h >= w.StartHour && h < w.EndHour
}

// SchedulePolicy overclocks during fixed daily windows.
type SchedulePolicy struct {
	Windows []ScheduleWindow
}

// Active reports whether any window contains ts.
func (p SchedulePolicy) Active(ts time.Time) bool {
	for _, w := range p.Windows {
		if w.Contains(ts) {
			return true
		}
	}
	return false
}

// ScaleOutConfig governs the global WI agent's corrective actions when
// overclocking is rejected or about to run out.
type ScaleOutConfig struct {
	// MinInstances and MaxInstances bound the deployment size.
	MinInstances, MaxInstances int
	// StepInstances is how many instances one corrective action adds.
	StepInstances int
	// Cooldown throttles consecutive scale actions.
	Cooldown time.Duration
	// ScaleInFrac of the SLO below which (with no overclocking active)
	// the deployment scales back in.
	ScaleInFrac float64
	// Proactive enables scale-out on exhaustion predictions, before
	// overclocking actually fails (§IV-D; evaluated in §V-A's
	// overclocking-constrained experiment).
	Proactive bool
	// RejectThreshold is the paper's "create x new if y existing VMs
	// cannot be overclocked": corrective scale-out fires only after this
	// many rejections accumulate since the last corrective action, so a
	// one-off rejection (e.g. before a budget reassignment lands) does
	// not add capacity.
	RejectThreshold int
}

// OCGrace is how long after overclocking engages before metric-driven
// scale-out may fire: latency needs a control period or two to reflect the
// new frequency.
const OCGrace = 30 * time.Second

// rejectRetry is how long a rejected instance waits before re-requesting
// overclocking.
const rejectRetry = 15 * time.Second

// rejectMemory is how long the WI treats overclocking as unavailable after
// a rejection or predicted exhaustion, suppressing scale-in (the capacity
// will be needed again next peak — the budget only refills at the next
// epoch) and unblocking direct scale-out.
const rejectMemory = 30 * time.Minute

// ScaleOutSustain is how long the deployment tail must continuously exceed
// the scale-out threshold (with overclocking already engaged) before
// capacity is added: transient single-interval excursions are the
// overclock's job, sustained ones need instances.
const ScaleOutSustain = 10 * time.Second

// OCMinOn is the minimum time an engaged overclock stays on; it prevents
// dithering when the recovered latency sits near the release threshold
// (§IV-A warns that a scale-down estimate too close to scale-up causes
// dithering).
const OCMinOn = 60 * time.Second

// DefaultScaleOutConfig allows growing a single instance up to four.
func DefaultScaleOutConfig() ScaleOutConfig {
	return ScaleOutConfig{
		MinInstances: 1, MaxInstances: 4, StepInstances: 1,
		Cooldown: 2 * time.Minute, ScaleInFrac: 0.3, Proactive: true,
		RejectThreshold: 3,
	}
}

// Directive is the global WI agent's decision for its deployment.
type Directive struct {
	// Overclock lists, per instance name, whether it should be
	// overclocked right now.
	Overclock map[string]bool
	// Instances is the desired deployment size.
	Instances int
}

// GlobalWI is the Global Workload Intelligence agent of one service: it
// aggregates instance metrics, applies the metric and/or schedule policy,
// and takes corrective scale actions when overclocking is unavailable.
type GlobalWI struct {
	SLOms    float64
	Metric   *MetricPolicy
	Util     *UtilPolicy
	Schedule *SchedulePolicy
	Scale    ScaleOutConfig

	instances map[string]InstanceMetrics
	ocActive  map[string]bool
	// rejectHold blocks re-requesting overclock for an instance whose
	// request was denied, until its tail recovers below the scale-down
	// threshold or the hold expires — otherwise the metric policy would
	// re-trigger and be re-rejected every interval. Expiry matters: the
	// sOA's budget may have been raised (gOA reassignment, exploration)
	// since the rejection.
	rejectHold  map[string]time.Time
	desired     int
	lastScaleAt time.Time
	hasScaled   bool
	// lastOCStartAt is when overclocking last engaged; metric-driven
	// scale-out waits OCGrace after it so vertical scaling has a chance
	// to take effect before capacity is added.
	lastOCStartAt time.Time
	hasOCStarted  bool
	// ocStartAt tracks per-instance engagement for the OCMinOn hold.
	ocStartAt map[string]time.Time
	// overSince tracks how long the tail has continuously exceeded the
	// scale-out threshold.
	overSince   time.Time
	hasOverMark bool

	rejections         int
	rejectsSinceAction int
	pendingCorrect     bool
	rejectPending      []string // holds to stamp with the next Decide's clock
	lastRejectAt       time.Time
	hasRejected        bool
	markRejectNow      bool // stamp lastRejectAt with the next Decide's clock

	// Stats.
	scaleOuts int
	scaleIns  int

	// obs, when non-nil, holds resolved metric handles (see Instrument in
	// obs.go).
	obs *wiObs
}

// NewGlobalWI creates a global WI agent for a service with the given SLO.
func NewGlobalWI(sloMS float64, metric *MetricPolicy, schedule *SchedulePolicy, scale ScaleOutConfig) *GlobalWI {
	if scale.MinInstances < 1 {
		scale.MinInstances = 1
	}
	if scale.MaxInstances < scale.MinInstances {
		scale.MaxInstances = scale.MinInstances
	}
	if scale.StepInstances < 1 {
		scale.StepInstances = 1
	}
	return &GlobalWI{
		SLOms: sloMS, Metric: metric, Schedule: schedule, Scale: scale,
		instances:  make(map[string]InstanceMetrics),
		ocActive:   make(map[string]bool),
		ocStartAt:  make(map[string]time.Time),
		rejectHold: make(map[string]time.Time),
		desired:    scale.MinInstances,
	}
}

// Observe records one instance's metrics (the Local WI agent's report).
func (w *GlobalWI) Observe(instance string, m InstanceMetrics) {
	w.instances[instance] = m
}

// Forget removes a decommissioned instance from every tracking structure.
// The rejectPending sweep matters: a name left there would be re-inserted
// into rejectHold by the next Decide, resurrecting the instance.
func (w *GlobalWI) Forget(instance string) {
	delete(w.instances, instance)
	delete(w.ocActive, instance)
	delete(w.rejectHold, instance)
	delete(w.ocStartAt, instance)
	kept := w.rejectPending[:0]
	for _, name := range w.rejectPending {
		if name != instance {
			kept = append(kept, name)
		}
	}
	w.rejectPending = kept
}

// ReportRejection tells the agent an overclocking request for one of its
// instances was denied; enough rejections trigger corrective scale-out.
// A lifetime rejection means the overclocking budget is gone until the
// next epoch, so the deployment also enters the long "overclocking
// unavailable" regime; power rejections are transient (budget
// reassignment or exploration usually resolves them within minutes).
func (w *GlobalWI) ReportRejection(instance string, reason RejectReason) {
	w.ocActive[instance] = false
	w.rejectHold[instance] = w.lastScaleAt // placeholder; stamped in Decide
	w.rejectPending = append(w.rejectPending, instance)
	w.rejections++
	w.obsRejection()
	w.rejectsSinceAction++
	threshold := w.Scale.RejectThreshold
	if threshold < 1 {
		threshold = 1
	}
	if w.rejectsSinceAction >= threshold {
		w.pendingCorrect = true
	}
	if reason == RejectLifetime {
		w.hasRejected = true
		w.markRejectNow = true
	}
}

// ReportExhaustion tells the agent overclocking will become unavailable at
// the given time; with a proactive policy this triggers early scale-out.
func (w *GlobalWI) ReportExhaustion(kind ExhaustionKind, at time.Time) {
	if w.Scale.Proactive {
		w.pendingCorrect = true
		// Overclocking becomes unavailable at the predicted instant;
		// capacity added now must be retained past it.
		if !w.hasRejected || at.After(w.lastRejectAt) {
			w.lastRejectAt = at
			w.hasRejected = true
		}
	}
}

// Rejections returns the number of rejections reported so far.
func (w *GlobalWI) Rejections() int { return w.rejections }

// ScaleOuts and ScaleIns return corrective-action counters.
func (w *GlobalWI) ScaleOuts() int { return w.scaleOuts }

// ScaleIns returns how many scale-in actions were taken.
func (w *GlobalWI) ScaleIns() int { return w.scaleIns }

// deploymentP99 returns the worst instance tail — the deployment-level
// metric policies act on.
func (w *GlobalWI) deploymentP99() float64 {
	worst := 0.0
	for _, m := range w.instances {
		if m.P99MS > worst {
			worst = m.P99MS
		}
	}
	return worst
}

// deploymentUtil returns the mean instance utilization — the paper's Fig 4
// deployment-level provisioning metric.
func (w *GlobalWI) deploymentUtil() float64 {
	if len(w.instances) == 0 {
		return 0
	}
	sum := 0.0
	for _, m := range w.instances {
		sum += m.Util
	}
	return sum / float64(len(w.instances))
}

// sortedInstances returns instance names deterministically.
func (w *GlobalWI) sortedInstances() []string {
	names := make([]string, 0, len(w.instances))
	for name := range w.instances {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Decide produces the deployment directive for now from the policies and
// any pending corrective actions (§IV-A, §IV-D).
func (w *GlobalWI) Decide(now time.Time) Directive {
	p99 := w.deploymentP99()
	scheduleOn := w.Schedule != nil && w.Schedule.Active(now)

	// Track sustained excess over the scale-out threshold.
	if w.Metric != nil && p99 >= w.Metric.ScaleOutFrac*w.SLOms {
		if !w.hasOverMark {
			w.overSince = now
			w.hasOverMark = true
		}
	} else {
		w.hasOverMark = false
	}

	// Stamp freshly reported rejections with this decision's clock. The
	// hold is short: the sOA may already be exploring a higher budget,
	// so the request is retried quickly (§IV-D).
	for _, name := range w.rejectPending {
		w.rejectHold[name] = now.Add(rejectRetry)
	}
	w.rejectPending = nil
	if w.markRejectNow {
		if now.After(w.lastRejectAt) {
			w.lastRejectAt = now
		}
		w.markRejectNow = false
	}
	// While overclocking is known to be unavailable, the deployment acts
	// as if it cannot scale up: extra capacity is retained and the
	// scale-out path does not wait for an (impossible) overclock.
	ocUnavailable := w.hasRejected && now.Sub(w.lastRejectAt) < rejectMemory

	// Per-instance overclock decisions. The deployment-mean utilization is
	// invariant across the loop (Observe/Forget never run mid-decision), so
	// compute it once rather than per instance.
	depUtil := w.deploymentUtil()
	for _, name := range w.sortedInstances() {
		m := w.instances[name]
		if until, held := w.rejectHold[name]; held {
			w.ocActive[name] = false
			recovered := w.Metric == nil || m.P99MS <= w.Metric.ScaleDownFrac*w.SLOms
			if recovered || !now.Before(until) {
				delete(w.rejectHold, name) // eligible again
			}
			continue
		}
		want := w.ocActive[name]
		wasOn := want
		if scheduleOn {
			want = true
		} else if w.Metric != nil || w.Util != nil {
			up := w.Metric != nil && m.P99MS >= w.Metric.ScaleUpFrac*w.SLOms
			down := w.Metric != nil && m.P99MS <= w.Metric.ScaleDownFrac*w.SLOms
			if w.Util != nil {
				// Deployment-level utilization triggers (Fig 4): no VM is
				// overclocked while the deployment as a whole is under its
				// target, even if this instance runs hot.
				up = up || depUtil >= w.Util.ScaleUpUtil
				if w.Metric == nil {
					down = depUtil <= w.Util.ScaleDownUtil
				} else {
					down = down && depUtil <= w.Util.ScaleDownUtil
				}
			}
			switch {
			case up:
				want = true
			case down:
				// Hold the overclock for a minimum period to avoid
				// dithering around the release threshold.
				if started, ok := w.ocStartAt[name]; !ok || now.Sub(started) >= OCMinOn {
					want = false
				}
			}
			// Outside any schedule window with no metric pressure, stop.
		} else if w.Schedule != nil {
			want = false
		}
		w.ocActive[name] = want
		if want && !wasOn {
			w.lastOCStartAt = now
			w.hasOCStarted = true
			w.ocStartAt[name] = now
			w.obsOCEngage()
		}
		if !want {
			delete(w.ocStartAt, name)
		}
	}

	// Deployment sizing: corrective scale-out dominates, then the metric
	// scale-out threshold, then scale-in when comfortably idle.
	canAct := !w.hasScaled || now.Sub(w.lastScaleAt) >= w.Scale.Cooldown
	switch {
	case w.pendingCorrect && canAct && w.desired < w.Scale.MaxInstances:
		w.desired += w.Scale.StepInstances
		if w.desired > w.Scale.MaxInstances {
			w.desired = w.Scale.MaxInstances
		}
		w.scaleOuts++
		w.obsScale(now, "scale-out", "corrective", w.desired)
		w.lastScaleAt = now
		w.hasScaled = true
		w.pendingCorrect = false
		w.rejectsSinceAction = 0
	// Metric-driven scale-out only fires once overclocking is already
	// engaged: the scale-up threshold sits before the scale-out threshold
	// so vertical scaling absorbs spikes first (§IV-D).
	case w.Metric != nil && p99 >= w.Metric.ScaleOutFrac*w.SLOms &&
		(ocUnavailable || (w.anyOCActive() &&
			w.hasOCStarted && now.Sub(w.lastOCStartAt) >= OCGrace &&
			w.hasOverMark && now.Sub(w.overSince) >= ScaleOutSustain)) &&
		canAct && w.desired < w.Scale.MaxInstances:
		w.desired += w.Scale.StepInstances
		if w.desired > w.Scale.MaxInstances {
			w.desired = w.Scale.MaxInstances
		}
		w.scaleOuts++
		w.obsScale(now, "scale-out", "metric", w.desired)
		w.lastScaleAt = now
		w.hasScaled = true
	case w.Scale.ScaleInFrac > 0 && p99 > 0 && p99 <= w.Scale.ScaleInFrac*w.SLOms &&
		!w.anyOCActive() && !ocUnavailable && canAct && w.desired > w.Scale.MinInstances:
		w.desired--
		w.scaleIns++
		w.obsScale(now, "scale-in", "idle", w.desired)
		w.lastScaleAt = now
		w.hasScaled = true
	default:
		if w.pendingCorrect && w.desired >= w.Scale.MaxInstances {
			// Cannot grow further; drop the pending flag.
			w.pendingCorrect = false
		}
	}

	oc := make(map[string]bool, len(w.ocActive))
	for name, v := range w.ocActive {
		oc[name] = v
	}
	w.obsDecide(w.desired)
	return Directive{Overclock: oc, Instances: w.desired}
}

func (w *GlobalWI) anyOCActive() bool {
	for _, v := range w.ocActive {
		if v {
			return true
		}
	}
	return false
}
