// Agent state snapshot/restore: the serializable state of the gOA and sOA
// for durable checkpoints (warm restart after a crash).
//
// The split follows one rule: config is code, state is data. Snapshots hold
// only what the agent learned or decided at runtime — profiles, ledgers,
// session grants, exploration position, recorders. Configuration (SOAConfig,
// hosts, callbacks, observability handles) is re-created by the restoring
// process and never serialized; Restore is always called on an agent freshly
// constructed from the same configuration.

package core

import (
	"fmt"
	"sort"
	"time"

	"smartoclock/internal/lifetime"
	"smartoclock/internal/policy"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

// GOAState is the serializable state of a Global Overclocking Agent.
type GOAState struct {
	Rack     string                   `json:"rack"`
	Limit    float64                  `json:"limit"`
	Profiles map[string]ServerProfile `json:"profiles,omitempty"`
}

// Snapshot captures the gOA's learned state. Template structures inside the
// profiles are shared, not copied: they are treated as immutable once
// reported.
func (g *GOA) Snapshot() *GOAState {
	st := &GOAState{Rack: g.rack, Limit: g.limit}
	if len(g.profiles) > 0 {
		st.Profiles = make(map[string]ServerProfile, len(g.profiles))
		for name, p := range g.profiles {
			st.Profiles[name] = p
		}
	}
	return st
}

// Restore overwrites the gOA's state from a snapshot.
func (g *GOA) Restore(st *GOAState) {
	g.rack = st.Rack
	g.limit = st.Limit
	g.profiles = make(map[string]ServerProfile, len(st.Profiles))
	for name, p := range st.Profiles {
		g.profiles[name] = p
	}
}

// SessionState is the serializable state of one overclocking session.
type SessionState struct {
	VM         string    `json:"vm"`
	Cores      []int     `json:"cores"`
	TargetMHz  int       `json:"target_mhz"`
	Priority   Priority  `json:"priority"`
	Scheduled  bool      `json:"scheduled,omitempty"`
	StartedAt  time.Time `json:"started_at"`
	CurrentMHz int       `json:"current_mhz"`
}

// SOAState is the serializable state of a Server Overclocking Agent,
// including the per-core lifetime ledger it enforces.
type SOAState struct {
	Assigned      *timeseries.WeekTemplate `json:"assigned,omitempty"`
	StaticBudget  float64                  `json:"static_budget"`
	PowerTemplate *timeseries.WeekTemplate `json:"power_template,omitempty"`

	Mode       int     `json:"mode"`
	ExtraWatts float64 `json:"extra_watts"`
	// Backoff mirrors Exploration.Backoff for snapshots written before the
	// policy layer existed; Restore falls back to it when Exploration is
	// absent.
	Backoff time.Duration `json:"backoff"`
	// Exploration is the exploration policy's full adaptive state.
	Exploration   *policy.ExplorationState `json:"exploration,omitempty"`
	NextExploreAt time.Time                `json:"next_explore_at"`
	LastBumpAt    time.Time                `json:"last_bump_at"`
	ExploitUntil  time.Time                `json:"exploit_until"`

	Sessions []SessionState `json:"sessions,omitempty"`

	PowerRec      *timeseries.Series       `json:"power_rec"`
	OCRec         *predict.OCRecorderState `json:"oc_rec"`
	SlotRequested int                      `json:"slot_requested"`
	NextSlotAt    time.Time                `json:"next_slot_at"`

	LastTick        time.Time `json:"last_tick"`
	HasLastTick     bool      `json:"has_last_tick"`
	RecentRejectAt  time.Time `json:"recent_reject_at"`
	HasRecentReject bool      `json:"has_recent_reject"`

	LastExhaustSignal map[ExhaustionKind]time.Time `json:"last_exhaust_signal,omitempty"`

	Granted  int `json:"granted"`
	Rejected int `json:"rejected"`

	Budgets *lifetime.CoreBudgetsState `json:"budgets,omitempty"`
}

// Snapshot captures the sOA's runtime state. Sessions are sorted by VM name
// so the snapshot is deterministic regardless of map iteration order.
// Assigned and power templates are shared (immutable once installed); the
// recorders are deep-copied.
func (a *SOA) Snapshot() *SOAState {
	st := &SOAState{
		Assigned:        a.assigned,
		StaticBudget:    a.staticBudget,
		PowerTemplate:   a.powerTemplate,
		Mode:            int(a.mode),
		ExtraWatts:      a.extraWatts,
		NextExploreAt:   a.nextExploreAt,
		LastBumpAt:      a.lastBumpAt,
		ExploitUntil:    a.exploitUntil,
		PowerRec:        a.powerRec.Clone(),
		OCRec:           a.ocRec.Snapshot(),
		SlotRequested:   a.slotRequested,
		NextSlotAt:      a.nextSlotAt,
		LastTick:        a.lastTick,
		HasLastTick:     a.hasLastTick,
		RecentRejectAt:  a.recentRejectAt,
		HasRecentReject: a.hasRecentReject,
		Granted:         a.granted,
		Rejected:        a.rejected,
	}
	expl := a.pol.Exploration.Snapshot()
	st.Exploration = &expl
	st.Backoff = expl.Backoff
	if a.budgets != nil {
		st.Budgets = a.budgets.Snapshot()
	}
	if len(a.sessions) > 0 {
		st.Sessions = make([]SessionState, 0, len(a.sessions))
		for _, s := range a.sessions {
			st.Sessions = append(st.Sessions, SessionState{
				VM: s.VM, Cores: append([]int(nil), s.Cores...), TargetMHz: s.TargetMHz,
				Priority: s.Priority, Scheduled: s.Scheduled,
				StartedAt: s.StartedAt, CurrentMHz: s.currentMHz,
			})
		}
		sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].VM < st.Sessions[j].VM })
	}
	if len(a.lastExhaustSignal) > 0 {
		st.LastExhaustSignal = make(map[ExhaustionKind]time.Time, len(a.lastExhaustSignal))
		for k, v := range a.lastExhaustSignal {
			st.LastExhaustSignal[k] = v
		}
	}
	return st
}

// Restore overwrites the sOA's runtime state from a snapshot and re-applies
// each restored session's frequency to the host, so a warm-restarted agent
// resumes driving the hardware exactly where the checkpoint left it. The
// lifetime ledger is restored when the snapshot carries one; a core-count
// mismatch (snapshot from different hardware) fails before any state is
// touched.
func (a *SOA) Restore(st *SOAState) error {
	if st.Budgets != nil && a.budgets != nil && len(st.Budgets.Cores) != a.budgets.Len() {
		return fmt.Errorf("core: snapshot ledger has %d cores, host has %d", len(st.Budgets.Cores), a.budgets.Len())
	}
	for _, s := range st.Sessions {
		for _, c := range s.Cores {
			if c < 0 || c >= a.host.NumCores() {
				return fmt.Errorf("core: session %s references core %d of %d", s.VM, c, a.host.NumCores())
			}
		}
	}

	a.assigned = st.Assigned
	a.staticBudget = st.StaticBudget
	a.powerTemplate = st.PowerTemplate
	a.mode = exploreMode(st.Mode)
	a.extraWatts = st.ExtraWatts
	if st.Exploration != nil {
		a.pol.Exploration.Restore(*st.Exploration)
	} else if st.Backoff > 0 {
		a.pol.Exploration.Restore(policy.ExplorationState{Backoff: st.Backoff})
	}
	a.nextExploreAt = st.NextExploreAt
	a.lastBumpAt = st.LastBumpAt
	a.exploitUntil = st.ExploitUntil
	if st.PowerRec != nil {
		a.powerRec = st.PowerRec.Clone()
	}
	if st.OCRec != nil {
		a.ocRec.Restore(st.OCRec)
	}
	a.slotRequested = st.SlotRequested
	a.nextSlotAt = st.NextSlotAt
	a.lastTick = st.LastTick
	a.hasLastTick = st.HasLastTick
	a.recentRejectAt = st.RecentRejectAt
	a.hasRecentReject = st.HasRecentReject
	a.granted = st.Granted
	a.rejected = st.Rejected

	a.lastExhaustSignal = make(map[ExhaustionKind]time.Time, len(st.LastExhaustSignal))
	for k, v := range st.LastExhaustSignal {
		a.lastExhaustSignal[k] = v
	}

	if st.Budgets != nil && a.budgets != nil {
		if err := a.budgets.Restore(st.Budgets); err != nil {
			return err
		}
	}

	a.sessions = make(map[string]*Session, len(st.Sessions))
	a.sessScratch = nil
	for _, s := range st.Sessions {
		sess := &Session{
			VM: s.VM, Cores: append([]int(nil), s.Cores...), TargetMHz: s.TargetMHz,
			Priority: s.Priority, Scheduled: s.Scheduled,
			StartedAt: s.StartedAt, currentMHz: s.CurrentMHz,
		}
		a.sessions[s.VM] = sess
		a.applyFreq(sess)
	}
	return nil
}
