package core

import (
	"time"

	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
)

// This file wires the agent hierarchy into the observability layer. Each
// agent owns a nil-able *xxxObs holding pre-resolved metric handles: when
// instrumentation is off the hot paths pay a single pointer test, and when
// it is on each event is a plain field update (0 allocs/op, guarded by
// obs_alloc_test.go). Trace emission is reserved for bounded occurrences —
// rejections, state transitions, faults — never per-grant bookkeeping.

// soaObs holds the sOA's resolved instruments.
type soaObs struct {
	tracer *obs.Tracer
	server string

	requests     *metrics.Counter
	grants       *metrics.Counter
	rejPower     *metrics.Counter
	rejLifetime  *metrics.Counter
	rejDuplicate *metrics.Counter
	rejInvalid   *metrics.Counter
	exhaustedSes *metrics.Counter
	exploreBumps *metrics.Counter
	warnBackoffs *metrics.Counter
	capResets    *metrics.Counter
	exhaustPower *metrics.Counter
	exhaustOC    *metrics.Counter
	budgetWatts  *metrics.Gauge
	extraWatts   *metrics.Gauge
	grantCores   *metrics.Histogram
}

// Instrument attaches the sOA to a registry and tracer. The server label is
// the host name; extra labels give experiment context (class, system).
// Calling it again — e.g. on an agent rebooted after a chaos crash —
// resolves the same series, so totals keep accumulating.
func (a *SOA) Instrument(reg *metrics.Registry, tr *obs.Tracer, labels ...metrics.Label) {
	server := a.host.Name()
	ls := make([]metrics.Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, metrics.L("server", server))
	withReason := func(reason RejectReason) []metrics.Label {
		out := make([]metrics.Label, len(ls), len(ls)+1)
		copy(out, ls)
		return append(out, metrics.L("reason", string(reason)))
	}
	withKind := func(kind ExhaustionKind) []metrics.Label {
		out := make([]metrics.Label, len(ls), len(ls)+1)
		copy(out, ls)
		return append(out, metrics.L("kind", string(kind)))
	}
	a.obs = &soaObs{
		tracer:       tr,
		server:       server,
		requests:     reg.Counter("soa_requests_total", ls...),
		grants:       reg.Counter("soa_grants_total", ls...),
		rejPower:     reg.Counter("soa_rejects_total", withReason(RejectPower)...),
		rejLifetime:  reg.Counter("soa_rejects_total", withReason(RejectLifetime)...),
		rejDuplicate: reg.Counter("soa_rejects_total", withReason(RejectDuplicate)...),
		rejInvalid:   reg.Counter("soa_rejects_total", withReason(RejectInvalid)...),
		exhaustedSes: reg.Counter("soa_sessions_exhausted_total", ls...),
		exploreBumps: reg.Counter("soa_explore_bumps_total", ls...),
		warnBackoffs: reg.Counter("soa_warning_backoffs_total", ls...),
		capResets:    reg.Counter("soa_cap_resets_total", ls...),
		exhaustPower: reg.Counter("soa_exhaustion_signals_total", withKind(ExhaustPower)...),
		exhaustOC:    reg.Counter("soa_exhaustion_signals_total", withKind(ExhaustOCBudget)...),
		budgetWatts:  reg.Gauge("soa_budget_watts", ls...),
		extraWatts:   reg.Gauge("soa_extra_watts", ls...),
		grantCores:   reg.Histogram("soa_grant_cores", metrics.CoreBuckets, ls...),
	}
}

// obsRequest counts an admission request.
func (a *SOA) obsRequest() {
	if a.obs != nil {
		a.obs.requests.Inc()
	}
}

// obsGrant counts a granted session.
func (a *SOA) obsGrant(cores int) {
	if a.obs != nil {
		a.obs.grants.Inc()
		a.obs.grantCores.Observe(float64(cores))
	}
}

// obsReject counts and traces a rejection.
func (a *SOA) obsReject(now time.Time, vm string, reason RejectReason) {
	if a.obs == nil {
		return
	}
	switch reason {
	case RejectPower:
		a.obs.rejPower.Inc()
	case RejectLifetime:
		a.obs.rejLifetime.Inc()
	case RejectDuplicate:
		a.obs.rejDuplicate.Inc()
	default:
		a.obs.rejInvalid.Inc()
	}
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "reject",
		Source: a.obs.server, Target: vm, Detail: string(reason),
	})
}

// obsSessionExhausted counts and traces a session stopped for exhausted
// per-core overclock time budgets.
func (a *SOA) obsSessionExhausted(now time.Time, vm string) {
	if a.obs == nil {
		return
	}
	a.obs.exhaustedSes.Inc()
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "session-exhausted",
		Source: a.obs.server, Target: vm,
	})
}

// obsExploreBump counts and traces one conditional budget increment.
func (a *SOA) obsExploreBump(now time.Time) {
	if a.obs == nil {
		return
	}
	a.obs.exploreBumps.Inc()
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "explore-bump",
		Source: a.obs.server, Value: a.extraWatts,
	})
}

// obsExploit traces the transition to exploiting a discovered safe budget.
func (a *SOA) obsExploit(now time.Time) {
	if a.obs == nil {
		return
	}
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "exploit",
		Source: a.obs.server, Value: a.extraWatts,
	})
}

// obsWarnBackoff counts and traces an exploration back-off after a rack
// warning.
func (a *SOA) obsWarnBackoff(now time.Time) {
	if a.obs == nil {
		return
	}
	a.obs.warnBackoffs.Inc()
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "warning-backoff",
		Source: a.obs.server, Value: a.extraWatts,
	})
}

// obsCapReset counts and traces the full budget revert after a cap event.
func (a *SOA) obsCapReset(now time.Time) {
	if a.obs == nil {
		return
	}
	a.obs.capResets.Inc()
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "cap-reset",
		Source: a.obs.server,
	})
}

// obsExhaustionSignal counts and traces a predicted-exhaustion warning to
// the WI layer.
func (a *SOA) obsExhaustionSignal(now time.Time, kind ExhaustionKind, at time.Time) {
	if a.obs == nil {
		return
	}
	switch kind {
	case ExhaustOCBudget:
		a.obs.exhaustOC.Inc()
	default:
		a.obs.exhaustPower.Inc()
	}
	a.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.SOA, Kind: "exhaustion-soon",
		Source: a.obs.server, Detail: string(kind), Value: at.Sub(now).Seconds(),
	})
}

// obsTick refreshes the budget gauges at the end of a control cycle.
func (a *SOA) obsTick(now time.Time) {
	if a.obs == nil {
		return
	}
	a.obs.budgetWatts.Set(a.BudgetAt(now))
	a.obs.extraWatts.Set(a.extraWatts)
}

// goaObs holds the gOA's resolved instruments.
type goaObs struct {
	tracer       *obs.Tracer
	rack         string
	computations *metrics.Counter
	lastSum      *metrics.Gauge
}

// Instrument attaches the gOA to a registry and tracer.
func (g *GOA) Instrument(reg *metrics.Registry, tr *obs.Tracer, labels ...metrics.Label) {
	ls := make([]metrics.Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, metrics.L("rack", g.rack))
	g.obs = &goaObs{
		tracer:       tr,
		rack:         g.rack,
		computations: reg.Counter("goa_budget_computations_total", ls...),
		lastSum:      reg.Gauge("goa_last_budget_sum_watts", ls...),
	}
}

// obsBudgets records one three-phase budget computation.
func (g *GOA) obsBudgets(sum float64) {
	if g.obs == nil {
		return
	}
	g.obs.computations.Inc()
	g.obs.lastSum.Set(sum)
}

// TraceBroadcast traces one budget broadcast to a server. Callers (the
// experiment harnesses own the transport, so they own the broadcast) invoke
// it at the push site; it is a no-op when the gOA is uninstrumented.
func (g *GOA) TraceBroadcast(now time.Time, server string, watts float64) {
	if g.obs == nil {
		return
	}
	g.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.GOA, Kind: "budget-broadcast",
		Source: g.obs.rack, Target: server, Value: watts,
	})
}

// wiObs holds the WI agent's resolved instruments.
type wiObs struct {
	tracer      *obs.Tracer
	service     string
	rejections  *metrics.Counter
	scaleOuts   *metrics.Counter
	scaleIns    *metrics.Counter
	engagements *metrics.Counter
	instances   *metrics.Gauge
}

// Instrument attaches the WI agent to a registry and tracer under the given
// service label.
func (w *GlobalWI) Instrument(reg *metrics.Registry, tr *obs.Tracer, service string, labels ...metrics.Label) {
	ls := make([]metrics.Label, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, metrics.L("service", service))
	w.obs = &wiObs{
		tracer:      tr,
		service:     service,
		rejections:  reg.Counter("wi_rejections_total", ls...),
		scaleOuts:   reg.Counter("wi_scale_outs_total", ls...),
		scaleIns:    reg.Counter("wi_scale_ins_total", ls...),
		engagements: reg.Counter("wi_oc_engagements_total", ls...),
		instances:   reg.Gauge("wi_instances", ls...),
	}
}

// obsRejection counts a rejection report from an sOA.
func (w *GlobalWI) obsRejection() {
	if w.obs != nil {
		w.obs.rejections.Inc()
	}
}

// obsScale counts and traces a scaling action. kind is "scale-out" or
// "scale-in"; detail names the trigger (corrective, metric).
func (w *GlobalWI) obsScale(now time.Time, kind, detail string, instances int) {
	if w.obs == nil {
		return
	}
	if kind == "scale-in" {
		w.obs.scaleIns.Inc()
	} else {
		w.obs.scaleOuts.Inc()
	}
	w.obs.tracer.Emit(obs.Event{
		Time: now, Component: obs.WI, Kind: kind,
		Source: w.obs.service, Detail: detail, Value: float64(instances),
	})
}

// obsOCEngage counts an instance turning overclocking on.
func (w *GlobalWI) obsOCEngage() {
	if w.obs != nil {
		w.obs.engagements.Inc()
	}
}

// obsDecide refreshes the instance gauge after a decision pass.
func (w *GlobalWI) obsDecide(instances int) {
	if w.obs != nil {
		w.obs.instances.Set(float64(instances))
	}
}
