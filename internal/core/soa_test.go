package core

import (
	"testing"
	"time"

	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/power"
	"smartoclock/internal/timeseries"
)

// fakeHost implements Host over a machine.Machine with controllable
// utilization.
type fakeHost struct {
	name string
	m    *machine.Machine
}

func newFakeHost(name string) *fakeHost {
	cfg := machine.DefaultConfig()
	cfg.Cores = 8 // small for tests
	return &fakeHost{name: name, m: machine.New(cfg)}
}

func (h *fakeHost) Name() string                 { return h.name }
func (h *fakeHost) NumCores() int                { return h.m.Cores() }
func (h *fakeHost) TurboMHz() int                { return h.m.Config().TurboMHz }
func (h *fakeHost) MaxOCMHz() int                { return h.m.Config().MaxOCMHz }
func (h *fakeHost) StepMHz() int                 { return h.m.Config().StepMHz }
func (h *fakeHost) Power() float64               { return h.m.Power() }
func (h *fakeHost) CoreUtil(core int) float64    { return h.m.Util(core) }
func (h *fakeHost) SetDesiredFreq(core, mhz int) { h.m.SetFreq(core, mhz) }
func (h *fakeHost) DesiredFreq(core int) int     { return h.m.Freq(core) }

func (h *fakeHost) OCDeltaWatts(cores, mhz int, util float64) float64 {
	cfg := h.m.Config()
	return float64(cores) * (cfg.CorePower(cfg.ClampFreq(mhz), util) - cfg.CorePower(cfg.TurboMHz, util))
}

func (h *fakeHost) setAllUtil(u float64) {
	for i := 0; i < h.m.Cores(); i++ {
		h.m.SetUtil(i, u)
	}
}

var soaStart = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

func newTestSOA(budgetWatts float64) (*SOA, *fakeHost) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), h.NumCores(), soaStart)
	return NewSOA(cfg, h, budgets, budgetWatts, soaStart), h
}

func ocReq(vm string, cores int) Request {
	return Request{VM: vm, Cores: cores, TargetMHz: 4000, Priority: PriorityMetric}
}

func TestRequestGrantedWithinBudget(t *testing.T) {
	a, h := newTestSOA(1000) // generous budget
	h.setAllUtil(0.5)
	d := a.Request(soaStart, ocReq("vm1", 4))
	if !d.Granted {
		t.Fatalf("rejected: %+v", d)
	}
	if len(d.Cores) != 4 {
		t.Fatalf("cores = %v", d.Cores)
	}
	for _, c := range d.Cores {
		if h.DesiredFreq(c) != 4000 {
			t.Fatalf("core %d freq = %d", c, h.DesiredFreq(c))
		}
	}
	if a.Granted() != 1 {
		t.Fatalf("granted counter = %d", a.Granted())
	}
}

func TestRequestRejectedOnPower(t *testing.T) {
	a, h := newTestSOA(0) // impossible budget
	h.setAllUtil(0.5)
	var rejectedVM string
	var reason RejectReason
	a.OnReject = func(vm string, r RejectReason) { rejectedVM = vm; reason = r }
	d := a.Request(soaStart, ocReq("vm1", 4))
	if d.Granted {
		t.Fatal("granted with zero budget")
	}
	if d.Reason != RejectPower || rejectedVM != "vm1" || reason != RejectPower {
		t.Fatalf("reason = %v, callback %v/%v", d.Reason, rejectedVM, reason)
	}
	if a.Rejected() != 1 {
		t.Fatalf("rejected counter = %d", a.Rejected())
	}
}

func TestRequestRejectedOnLifetime(t *testing.T) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	// Tiny budgets: 1% of a 1-hour epoch = 36s, below the default horizon.
	bcfg := lifetime.BudgetConfig{Epoch: time.Hour, Fraction: 0.01}
	budgets := lifetime.NewCoreBudgets(bcfg, h.NumCores(), soaStart)
	a := NewSOA(cfg, h, budgets, 1000, soaStart)
	d := a.Request(soaStart, ocReq("vm1", 2))
	if d.Granted || d.Reason != RejectLifetime {
		t.Fatalf("decision = %+v, want lifetime rejection", d)
	}
}

func TestRequestValidation(t *testing.T) {
	a, _ := newTestSOA(1000)
	d := a.Request(soaStart, Request{VM: "", Cores: 1, TargetMHz: 4000})
	if d.Granted || d.Reason != RejectInvalid {
		t.Fatalf("decision = %+v", d)
	}
}

func TestDuplicateSessionRejected(t *testing.T) {
	a, _ := newTestSOA(1000)
	if d := a.Request(soaStart, ocReq("vm1", 2)); !d.Granted {
		t.Fatal("setup grant failed")
	}
	d := a.Request(soaStart, ocReq("vm1", 2))
	if d.Granted || d.Reason != RejectDuplicate {
		t.Fatalf("decision = %+v", d)
	}
}

func TestStopRestoresTurbo(t *testing.T) {
	a, h := newTestSOA(1000)
	d := a.Request(soaStart, ocReq("vm1", 3))
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	a.Stop(soaStart.Add(time.Minute), "vm1")
	for _, c := range d.Cores {
		if h.DesiredFreq(c) != h.TurboMHz() {
			t.Fatalf("core %d freq = %d after stop", c, h.DesiredFreq(c))
		}
	}
	if len(a.Sessions()) != 0 {
		t.Fatal("session not removed")
	}
	a.Stop(soaStart, "ghost") // no-op
}

func TestNaiveModeGrantsEverything(t *testing.T) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	cfg.Naive = true
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), h.NumCores(), soaStart)
	a := NewSOA(cfg, h, budgets, 0, soaStart) // zero budget, still grants
	d := a.Request(soaStart, ocReq("vm1", 4))
	if !d.Granted {
		t.Fatal("naive mode must grant")
	}
}

func TestAdmitOverrideCentralOracle(t *testing.T) {
	a, h := newTestSOA(0) // zero local budget would reject
	h.setAllUtil(0.3)
	calls := 0
	a.cfg.AdmitOverride = func(req Request, delta float64) bool {
		calls++
		return true // oracle says the rack has room
	}
	d := a.Request(soaStart, ocReq("vm1", 2))
	if !d.Granted || calls != 1 {
		t.Fatalf("oracle admission failed: %+v calls=%d", d, calls)
	}
	a.cfg.AdmitOverride = func(Request, float64) bool { return false }
	d = a.Request(soaStart, ocReq("vm2", 2))
	if d.Granted {
		t.Fatal("oracle rejection ignored")
	}
}

func TestFeedbackLoopThrottlesOverBudget(t *testing.T) {
	a, h := newTestSOA(1000)
	h.setAllUtil(0.2)
	d := a.Request(soaStart, ocReq("vm1", 4))
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	// Load rises; shrink the budget below the current draw.
	h.setAllUtil(1.0)
	a.staticBudget = h.Power() - 10
	before := a.Sessions()["vm1"].CurrentMHz()
	a.Tick(soaStart.Add(time.Second))
	after := a.Sessions()["vm1"].CurrentMHz()
	if after >= before {
		t.Fatalf("feedback did not step down: %d -> %d", before, after)
	}
}

func TestFeedbackLoopRaisesTowardTarget(t *testing.T) {
	a, h := newTestSOA(1000)
	h.setAllUtil(0.2)
	d := a.Request(soaStart, ocReq("vm1", 4))
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	s := a.Sessions()["vm1"]
	s.currentMHz = h.TurboMHz() + h.StepMHz() // had been throttled
	a.applyFreq(s)
	a.Tick(soaStart.Add(time.Second))
	if s.CurrentMHz() <= h.TurboMHz()+h.StepMHz() {
		t.Fatalf("feedback did not step up: %d", s.CurrentMHz())
	}
}

func TestFeedbackPrioritizesImportantSessions(t *testing.T) {
	a, h := newTestSOA(1500)
	h.setAllUtil(0.5)
	dLow := a.Request(soaStart, Request{VM: "low", Cores: 2, TargetMHz: 4000, Priority: PriorityBestEffort})
	dHigh := a.Request(soaStart, Request{VM: "high", Cores: 2, TargetMHz: 4000, Priority: PriorityScheduled})
	if !dLow.Granted || !dHigh.Granted {
		t.Fatal("setup grants failed")
	}
	// Force draw over budget: the best-effort session must be throttled
	// first.
	h.setAllUtil(1.0)
	a.staticBudget = h.Power() - 5
	a.Tick(soaStart.Add(time.Second))
	low := a.Sessions()["low"].CurrentMHz()
	high := a.Sessions()["high"].CurrentMHz()
	if low >= high {
		t.Fatalf("priorities inverted: low=%d high=%d", low, high)
	}
}

func TestExplorationRaisesBudgetWhenConstrained(t *testing.T) {
	a, h := newTestSOA(0)
	h.setAllUtil(0.5)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	d := a.Request(soaStart, ocReq("vm1", 4))
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	// Budget 0 → feedback throttles to turbo → constrained → explore.
	now := soaStart
	for i := 0; i < 3; i++ {
		now = now.Add(time.Second)
		a.Tick(now)
	}
	if a.ExtraWatts() == 0 {
		t.Fatal("exploration did not raise the budget")
	}
	// Confirm window passes without warnings → another bump.
	before := a.ExtraWatts()
	now = now.Add(a.cfg.ExploreConfirm + time.Second)
	a.Tick(now)
	if a.ExtraWatts() <= before {
		t.Fatalf("no second bump: %v -> %v", before, a.ExtraWatts())
	}
}

func TestWarningBacksOffExploration(t *testing.T) {
	a, h := newTestSOA(0)
	h.setAllUtil(0.5)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	a.Request(soaStart, ocReq("vm1", 4))
	now := soaStart.Add(time.Second)
	a.Tick(now) // enters exploring, extra = step
	if a.ExtraWatts() != a.cfg.ExploreStepWatts {
		t.Fatalf("extra = %v", a.ExtraWatts())
	}
	a.OnRackEvent(now, power.Event{Kind: power.EventWarning})
	if a.ExtraWatts() != 0 {
		t.Fatalf("warning did not reduce extra: %v", a.ExtraWatts())
	}
	// Back-off prevents immediate re-exploration.
	now = now.Add(time.Second)
	a.Tick(now)
	if a.ExtraWatts() != 0 {
		t.Fatal("explored during back-off")
	}
	// After the back-off elapses, exploration resumes.
	now = now.Add(a.cfg.InitialBackoff + time.Second)
	a.Tick(now)
	if a.ExtraWatts() == 0 {
		t.Fatal("exploration did not resume after back-off")
	}
}

func TestWarningIgnoredWhenNotExploring(t *testing.T) {
	a, _ := newTestSOA(500)
	a.OnRackEvent(soaStart, power.Event{Kind: power.EventWarning})
	if a.ExtraWatts() != 0 || a.mode != modeIdle {
		t.Fatal("warning must be a no-op when idle")
	}
}

func TestCapResetsToAssignedBudget(t *testing.T) {
	a, h := newTestSOA(0)
	h.setAllUtil(0.5)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	a.Request(soaStart, ocReq("vm1", 4))
	now := soaStart
	for i := 0; i < 5; i++ {
		now = now.Add(a.cfg.ExploreConfirm)
		a.Tick(now)
	}
	if a.ExtraWatts() == 0 {
		t.Fatal("setup: exploration should have accumulated extra")
	}
	a.OnRackEvent(now, power.Event{Kind: power.EventCap})
	if a.ExtraWatts() != 0 {
		t.Fatalf("cap did not reset extra: %v", a.ExtraWatts())
	}
}

func TestNoWarningVariantIgnoresWarnings(t *testing.T) {
	a, h := newTestSOA(0)
	a.cfg.IgnoreWarnings = true
	h.setAllUtil(0.5)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	a.Request(soaStart, ocReq("vm1", 4))
	now := soaStart.Add(time.Second)
	a.Tick(now)
	extra := a.ExtraWatts()
	a.OnRackEvent(now, power.Event{Kind: power.EventWarning})
	if a.ExtraWatts() != extra {
		t.Fatal("NoWarning variant must ignore warnings")
	}
	a.OnRackEvent(now, power.Event{Kind: power.EventCap})
	if a.ExtraWatts() != 0 {
		t.Fatal("NoWarning variant must still revert on caps")
	}
}

func TestNoExploreVariantNeverExplores(t *testing.T) {
	a, h := newTestSOA(0)
	a.cfg.NoExplore = true
	h.setAllUtil(0.5)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	a.Request(soaStart, ocReq("vm1", 4))
	now := soaStart
	for i := 0; i < 10; i++ {
		now = now.Add(a.cfg.ExploreConfirm)
		a.Tick(now)
	}
	if a.ExtraWatts() != 0 {
		t.Fatal("NoFeedback variant explored")
	}
}

func TestOCTimeBudgetConsumedAndSessionStopped(t *testing.T) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	cfg.DefaultOCHorizon = time.Minute
	// 2-minute budget per core in a long epoch.
	bcfg := lifetime.BudgetConfig{Epoch: 100 * time.Hour, Fraction: 2.0 / 60 / 100}
	budgets := lifetime.NewCoreBudgets(bcfg, h.NumCores(), soaStart)
	a := NewSOA(cfg, h, budgets, 10000, soaStart)
	h.setAllUtil(0.5)
	var stopped string
	a.OnReject = func(vm string, r RejectReason) {
		if r == RejectLifetime {
			stopped = vm
		}
	}
	// 8 cores, session on all of them: no spare cores to migrate to.
	d := a.Request(soaStart, ocReq("vm1", 8))
	if !d.Granted {
		t.Fatalf("setup grant failed: %+v", d)
	}
	now := soaStart
	for i := 0; i < 10 && len(a.Sessions()) > 0; i++ {
		now = now.Add(time.Minute)
		a.Tick(now)
	}
	if len(a.Sessions()) != 0 {
		t.Fatal("session survived budget exhaustion")
	}
	if stopped != "vm1" {
		t.Fatalf("WI not notified of stop: %q", stopped)
	}
}

func TestOCSessionMigratesToFreshCores(t *testing.T) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	cfg.DefaultOCHorizon = time.Minute
	bcfg := lifetime.BudgetConfig{Epoch: 100 * time.Hour, Fraction: 3.0 / 60 / 100} // 3 min/core
	budgets := lifetime.NewCoreBudgets(bcfg, h.NumCores(), soaStart)
	a := NewSOA(cfg, h, budgets, 10000, soaStart)
	h.setAllUtil(0.5)
	d := a.Request(soaStart, ocReq("vm1", 2)) // uses 2 of 8 cores
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	orig := append([]int(nil), a.Sessions()["vm1"].Cores...)
	now := soaStart
	for i := 0; i < 6; i++ {
		now = now.Add(time.Minute)
		a.Tick(now)
	}
	if len(a.Sessions()) != 1 {
		t.Fatal("session should have migrated, not stopped")
	}
	cur := a.Sessions()["vm1"].Cores
	same := cur[0] == orig[0] && cur[1] == orig[1]
	if same {
		t.Fatalf("session did not migrate off exhausted cores: %v -> %v", orig, cur)
	}
}

func TestScheduledRequestReservesBudget(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.3)
	req := Request{VM: "vm1", Cores: 2, TargetMHz: 4000, Priority: PriorityScheduled, Duration: time.Hour}
	d := a.Request(soaStart, req)
	if !d.Granted {
		t.Fatalf("scheduled grant failed: %+v", d)
	}
	for _, c := range d.Cores {
		if a.budgets.Core(c).Reserved() != time.Hour {
			t.Fatalf("core %d reserved = %v", c, a.budgets.Core(c).Reserved())
		}
	}
}

func TestProfileRecording(t *testing.T) {
	a, h := newTestSOA(1000)
	a.cfg.ProfileStep = time.Minute
	a.nextSlotAt = soaStart.Add(time.Minute)
	h.setAllUtil(0.5)
	a.Request(soaStart, ocReq("vm1", 2))
	now := soaStart
	for i := 0; i < 5; i++ {
		now = now.Add(time.Minute)
		a.Tick(now)
	}
	if a.PowerRecord().Len() < 4 {
		t.Fatalf("power record len = %d", a.PowerRecord().Len())
	}
	powerTpl, ocTpl := a.Profile()
	if powerTpl == nil || ocTpl == nil {
		t.Fatal("profile templates missing")
	}
	if powerTpl.At(soaStart.Add(2*time.Minute)) <= 0 {
		t.Fatal("power template empty")
	}
}

func TestExhaustionSignalForOCBudget(t *testing.T) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	cfg.ExhaustionWindow = 15 * time.Minute
	cfg.DefaultOCHorizon = time.Minute
	// 10-minute budget per core: within the 15-minute window.
	bcfg := lifetime.BudgetConfig{Epoch: 1000 * time.Hour, Fraction: 10.0 / 60 / 1000}
	budgets := lifetime.NewCoreBudgets(bcfg, h.NumCores(), soaStart)
	a := NewSOA(cfg, h, budgets, 10000, soaStart)
	h.setAllUtil(0.5)
	var signaled ExhaustionKind
	a.OnExhaustionSoon = func(kind ExhaustionKind, at time.Time) { signaled = kind }
	a.Request(soaStart, ocReq("vm1", 8))
	a.Tick(soaStart.Add(time.Second))
	if signaled != ExhaustOCBudget {
		t.Fatalf("signaled = %q, want oc-budget", signaled)
	}
}

func TestExhaustionSignalRateLimited(t *testing.T) {
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	cfg.DefaultOCHorizon = time.Minute
	bcfg := lifetime.BudgetConfig{Epoch: 1000 * time.Hour, Fraction: 10.0 / 60 / 1000}
	budgets := lifetime.NewCoreBudgets(bcfg, h.NumCores(), soaStart)
	a := NewSOA(cfg, h, budgets, 10000, soaStart)
	h.setAllUtil(0.5)
	count := 0
	a.OnExhaustionSoon = func(ExhaustionKind, time.Time) { count++ }
	a.Request(soaStart, ocReq("vm1", 8))
	now := soaStart
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		a.Tick(now)
	}
	if count != 1 {
		t.Fatalf("exhaustion signaled %d times within one window", count)
	}
}

func TestBudgetAtUsesAssignedTemplate(t *testing.T) {
	a, _ := newTestSOA(300)
	if a.BudgetAt(soaStart) != 300 {
		t.Fatal("static budget not used")
	}
	a.SetAssignedBudget(flatTemplate(550))
	if a.BudgetAt(soaStart) != 550 {
		t.Fatalf("assigned budget not used: %v", a.BudgetAt(soaStart))
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityScheduled.String() != "scheduled" || PriorityMetric.String() != "metric" ||
		PriorityBestEffort.String() != "best-effort" {
		t.Fatal("priority names wrong")
	}
}

func TestWearGateVetoesAdmission(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.5)
	a.cfg.WearGate = func(core int) bool { return false } // all cores worn out
	d := a.Request(soaStart, ocReq("vm1", 2))
	if d.Granted || d.Reason != RejectLifetime {
		t.Fatalf("decision = %+v, want wear-gated lifetime rejection", d)
	}
}

func TestWearGateStopsActiveSession(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.5)
	worn := false
	a.cfg.WearGate = func(core int) bool { return !worn }
	var stopped string
	a.OnReject = func(vm string, r RejectReason) {
		if r == RejectLifetime {
			stopped = vm
		}
	}
	if d := a.Request(soaStart, ocReq("vm1", 8)); !d.Granted {
		t.Fatalf("setup grant failed: %+v", d)
	}
	// Wear counters report exhaustion mid-session; the whole machine is
	// worn, so migration is impossible and the session must stop.
	worn = true
	a.Tick(soaStart.Add(time.Second))
	a.Tick(soaStart.Add(2 * time.Second))
	if len(a.Sessions()) != 0 {
		t.Fatal("worn-out session not stopped")
	}
	if stopped != "vm1" {
		t.Fatalf("WI not notified: %q", stopped)
	}
}

func TestReserveWindowLifecycle(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.4)
	a.SetPowerTemplate(flatTemplate(300))
	now := soaStart
	windowStart := now.Add(time.Hour)

	d, res := a.ReserveWindow(now, windowStart, 30*time.Minute,
		Request{VM: "batch", Cores: 4, TargetMHz: 4000, Priority: PriorityScheduled})
	if !d.Granted || res == nil {
		t.Fatalf("reservation failed: %+v", d)
	}
	for _, c := range res.Cores {
		if a.budgets.Core(c).Reserved() != 30*time.Minute {
			t.Fatalf("core %d reserved = %v", c, a.budgets.Core(c).Reserved())
		}
	}
	if !a.HonorCheck(res) {
		t.Fatal("fresh reservation must be honorable")
	}

	// Window opens: the session starts without re-admission and burns the
	// reserved budget.
	sd := a.StartReserved(windowStart, res)
	if !sd.Granted {
		t.Fatalf("StartReserved failed: %+v", sd)
	}
	if h.DesiredFreq(res.Cores[0]) != 4000 {
		t.Fatal("reserved cores not overclocked")
	}
	a.Tick(windowStart)
	a.Tick(windowStart.Add(10 * time.Minute))
	if got := a.budgets.Core(res.Cores[0]).Reserved(); got != 20*time.Minute {
		t.Fatalf("reservation not drawn down: %v", got)
	}
}

func TestReserveWindowPowerRejection(t *testing.T) {
	a, h := newTestSOA(100) // tiny budget
	h.setAllUtil(0.4)
	a.SetPowerTemplate(flatTemplate(300)) // baseline alone exceeds budget
	d, res := a.ReserveWindow(soaStart, soaStart.Add(time.Hour), 30*time.Minute,
		Request{VM: "batch", Cores: 4, TargetMHz: 4000, Priority: PriorityScheduled})
	if d.Granted || res != nil {
		t.Fatal("power-infeasible reservation accepted")
	}
	if d.Reason != RejectPower {
		t.Fatalf("reason = %v", d.Reason)
	}
	// Failed reservations must not leak reserved budget.
	for i := 0; i < a.host.NumCores(); i++ {
		if a.budgets.Core(i).Reserved() != 0 {
			t.Fatalf("core %d leaked reservation", i)
		}
	}
}

func TestReserveWindowValidation(t *testing.T) {
	a, _ := newTestSOA(2000)
	if d, _ := a.ReserveWindow(soaStart, soaStart.Add(-time.Hour), 30*time.Minute,
		Request{VM: "x", Cores: 1, TargetMHz: 4000}); d.Granted {
		t.Fatal("past window accepted")
	}
	if d, _ := a.ReserveWindow(soaStart, soaStart.Add(time.Hour), 0,
		Request{VM: "x", Cores: 1, TargetMHz: 4000}); d.Granted {
		t.Fatal("zero-length window accepted")
	}
}

func TestCancelReservationReleasesBudget(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.4)
	a.SetPowerTemplate(flatTemplate(300))
	_, res := a.ReserveWindow(soaStart, soaStart.Add(time.Hour), 30*time.Minute,
		Request{VM: "batch", Cores: 2, TargetMHz: 4000, Priority: PriorityScheduled})
	if res == nil {
		t.Fatal("setup reservation failed")
	}
	a.CancelReservation(res)
	for _, c := range res.Cores {
		if a.budgets.Core(c).Reserved() != 0 {
			t.Fatalf("core %d still reserved after cancel", c)
		}
	}
	a.CancelReservation(nil) // no-op
}

func TestHonorCheckDetectsBudgetShrink(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.4)
	a.SetPowerTemplate(flatTemplate(300))
	_, res := a.ReserveWindow(soaStart, soaStart.Add(time.Hour), 30*time.Minute,
		Request{VM: "batch", Cores: 4, TargetMHz: 4000, Priority: PriorityScheduled})
	if res == nil {
		t.Fatal("setup reservation failed")
	}
	// The gOA reassigns a much smaller budget: the reservation can no
	// longer be honored and the WI layer must be able to find out.
	a.SetStaticBudget(150, true)
	if a.HonorCheck(res) {
		t.Fatal("HonorCheck missed the shrunken budget")
	}
	if a.HonorCheck(nil) {
		t.Fatal("nil reservation must not be honorable")
	}
}

func TestStartReservedOutsideWindow(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.4)
	a.SetPowerTemplate(flatTemplate(300))
	_, res := a.ReserveWindow(soaStart, soaStart.Add(time.Hour), 30*time.Minute,
		Request{VM: "batch", Cores: 2, TargetMHz: 4000, Priority: PriorityScheduled})
	if res == nil {
		t.Fatal("setup reservation failed")
	}
	if d := a.StartReserved(soaStart, res); d.Granted {
		t.Fatal("started before the window")
	}
	if d := a.StartReserved(soaStart.Add(2*time.Hour), res); d.Granted {
		t.Fatal("started after the window")
	}
}

// TestRapidTriggerStress reproduces §V-A's stress observation: servers
// that triggered overclocking more than 140 times within 5 minutes still
// met every deadline, because the sOA starts/stops sessions in
// milliseconds. Here 150 start/stop cycles in 5 simulated minutes must all
// apply instantly and leave the accounting consistent.
func TestRapidTriggerStress(t *testing.T) {
	a, h := newTestSOA(2000)
	h.setAllUtil(0.6)
	now := soaStart
	const cycles = 150
	interval := 5 * time.Minute / (2 * cycles)
	for i := 0; i < cycles; i++ {
		d := a.Request(now, ocReq("vm1", 4))
		if !d.Granted {
			t.Fatalf("cycle %d: request rejected: %+v", i, d)
		}
		// The overclock must be in effect immediately — no deadline slack.
		for _, c := range d.Cores {
			if h.DesiredFreq(c) != 4000 {
				t.Fatalf("cycle %d: core %d not overclocked instantly", i, c)
			}
		}
		now = now.Add(interval)
		a.Tick(now)
		a.Stop(now, "vm1")
		if h.DesiredFreq(d.Cores[0]) != h.TurboMHz() {
			t.Fatalf("cycle %d: stop not applied instantly", i)
		}
		now = now.Add(interval)
		a.Tick(now)
	}
	if a.Granted() != cycles {
		t.Fatalf("granted = %d, want %d", a.Granted(), cycles)
	}
	if len(a.Sessions()) != 0 {
		t.Fatal("sessions leaked")
	}
	// Budget accounting stayed consistent: roughly half the window was
	// overclocked, spread across the chosen cores.
	total := 0.0
	for i := 0; i < a.host.NumCores(); i++ {
		cfgAllowance := a.budgets.Core(i).Config().Allowance()
		total += (cfgAllowance - a.budgets.Core(i).Remaining()).Seconds()
	}
	if total <= 0 {
		t.Fatal("no overclock time charged")
	}
}

func TestSOANameAndRecentRequested(t *testing.T) {
	a, h := newTestSOA(1000)
	if a.Name() != "s1" {
		t.Fatalf("Name = %q", a.Name())
	}
	h.setAllUtil(0.4)
	// No recorded slots yet: the live counter is returned.
	a.Request(soaStart, ocReq("vm1", 4))
	if got := a.RecentRequestedCores(5); got != 4 {
		t.Fatalf("live requested = %v", got)
	}
	// Close two profile slots and read the windowed mean.
	a.cfg.ProfileStep = time.Minute
	a.nextSlotAt = soaStart.Add(time.Minute)
	a.Tick(soaStart.Add(time.Minute))     // slot 1: requested 4
	a.Tick(soaStart.Add(2 * time.Minute)) // slot 2: requested 0
	if got := a.RecentRequestedCores(2); got != 2 {
		t.Fatalf("windowed requested = %v, want 2", got)
	}
	if got := a.RecentRequestedCores(1); got != 0 {
		t.Fatalf("last-slot requested = %v, want 0", got)
	}
}

func TestPredictedBaselineUsesTemplateMax(t *testing.T) {
	a, h := newTestSOA(520)
	h.setAllUtil(0.1) // current power is low...
	// ...but the template predicts a 500 W peak within the horizon, so a
	// request whose delta would fit current power must still be rejected.
	a.SetPowerTemplate(flatTemplate(500))
	d := a.Request(soaStart, ocReq("vm1", 8))
	if d.Granted {
		t.Fatal("admission ignored the predicted baseline peak")
	}
	// With a low predicted baseline it passes.
	a.SetPowerTemplate(flatTemplate(200))
	if d := a.Request(soaStart, ocReq("vm1", 8)); !d.Granted {
		t.Fatalf("admission rejected against low baseline: %+v", d)
	}
}

func TestRequestValidationReasons(t *testing.T) {
	cases := []Request{
		{VM: "", Cores: 1, TargetMHz: 4000},
		{VM: "x", Cores: 0, TargetMHz: 4000},
		{VM: "x", Cores: 1, TargetMHz: 0},
		{VM: "x", Cores: 1, TargetMHz: 4000, Duration: -time.Second},
	}
	for i, req := range cases {
		if err := req.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
	ok := Request{VM: "x", Cores: 1, TargetMHz: 4000}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewSOAPanicsOnBadProfileStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := newFakeHost("s1")
	cfg := DefaultSOAConfig()
	cfg.ProfileStep = 0
	NewSOA(cfg, h, lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), 8, soaStart), 100, soaStart)
}

func TestExplorationEntersExploitation(t *testing.T) {
	a, h := newTestSOA(0)
	h.setAllUtil(0.3)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	a.Request(soaStart, ocReq("vm1", 2))
	// Explore until the session reaches its target, then the sOA must
	// hold the discovered budget (exploitation) instead of growing it.
	now := soaStart
	for i := 0; i < 60; i++ {
		now = now.Add(a.cfg.ExploreConfirm)
		a.Tick(now)
		if a.Sessions()["vm1"].CurrentMHz() == 4000 {
			break
		}
	}
	if a.Sessions()["vm1"].CurrentMHz() != 4000 {
		t.Fatalf("exploration never reached target: %d MHz", a.Sessions()["vm1"].CurrentMHz())
	}
	stable := a.ExtraWatts()
	now = now.Add(a.cfg.ExploreConfirm)
	a.Tick(now)
	if a.ExtraWatts() != stable {
		t.Fatalf("exploitation must hold the budget: %v -> %v", stable, a.ExtraWatts())
	}
	// After the exploit timer, an unconstrained sOA stays idle.
	now = now.Add(a.cfg.ExploitTime + time.Second)
	a.Tick(now)
	if a.ExtraWatts() != stable {
		t.Fatalf("idle sOA must not change the budget: %v", a.ExtraWatts())
	}
}

func TestPowerExhaustionSignal(t *testing.T) {
	a, h := newTestSOA(600)
	h.setAllUtil(0.5)
	// Template: 450 W now (the request fits), climbing to 580 W at 10:00.
	// With the session's overclock delta the 600 W budget will then be
	// exceeded — the sOA must warn the WI layer ahead of time (Fig 11).
	slots := make([]float64, 24)
	for i := range slots {
		slots[i] = 450
		if i >= 10 {
			slots[i] = 580
		}
	}
	day := &timeseries.DayTemplate{Step: time.Hour, Slots: slots}
	a.SetPowerTemplate(&timeseries.WeekTemplate{Weekday: day, Weekend: day})
	a.cfg.ExhaustionWindow = 2 * time.Hour // look past the 10:00 climb
	var kind ExhaustionKind
	var at time.Time
	a.OnExhaustionSoon = func(k ExhaustionKind, t2 time.Time) { kind, at = k, t2 }
	if d := a.Request(soaStart, ocReq("vm1", 8)); !d.Granted { // soaStart is 9:00
		t.Fatalf("admission rejected: %+v", d)
	}
	a.Tick(soaStart.Add(time.Second))
	if kind != ExhaustPower {
		t.Fatalf("signal = %q, want power exhaustion", kind)
	}
	if at.Hour() != 10 {
		t.Fatalf("predicted exhaustion at %v, want the 10:00 climb", at)
	}
}

// TestDecentralizedFaultTolerance demonstrates the paper's Q5 argument: a
// centralized scheme rejects every request when its global entity dies,
// while SmartOClock's sOAs keep granting against their (possibly stale)
// assigned budgets and exploring beyond them.
func TestDecentralizedFaultTolerance(t *testing.T) {
	// Centralized: the oracle is unreachable — nothing is granted.
	central, hc := newTestSOA(0)
	hc.setAllUtil(0.4)
	oracleAlive := false
	central.cfg.AdmitOverride = func(Request, float64) bool { return oracleAlive }
	if d := central.Request(soaStart, ocReq("vm1", 4)); d.Granted {
		t.Fatal("centralized admission granted with a dead oracle")
	}

	// Decentralized: the gOA assigned a budget and then died; the sOA
	// keeps operating on the stale assignment.
	smart, hs := newTestSOA(0)
	hs.setAllUtil(0.4)
	smart.SetAssignedBudget(flatTemplate(900)) // last assignment before the gOA died
	smart.SetPowerTemplate(flatTemplate(400))
	d := smart.Request(soaStart, ocReq("vm1", 4))
	if !d.Granted {
		t.Fatalf("decentralized sOA must grant from the stale budget: %+v", d)
	}
	// And enforcement still runs locally.
	smart.Tick(soaStart.Add(time.Second))
	if len(smart.Sessions()) != 1 {
		t.Fatal("local session lost without the gOA")
	}
}

// TestSessionStopMidExplorationShedsUnconfirmedBudget is the regression
// test for the back-off audit: when every session stops while the sOA is
// exploring and no demand is pending, the raised budget was never confirmed
// safe (nothing ran at it). The sOA must shed the surplus and return to
// idle WITHOUT resetting the back-off — the old code treated the vacuously
// unconstrained state as a success, exploited the unconfirmed budget for
// ExploitTime and wiped the back-off schedule.
func TestSessionStopMidExplorationShedsUnconfirmedBudget(t *testing.T) {
	a, h := newTestSOA(0)
	h.setAllUtil(0.5)
	a.cfg.AdmitOverride = func(Request, float64) bool { return true }
	a.Request(soaStart, ocReq("vm1", 4))

	// Enter exploration, then take a warning so the back-off doubles.
	now := soaStart.Add(time.Second)
	a.Tick(now)
	if a.mode != modeExploring {
		t.Fatalf("setup: mode = %v, want exploring", a.mode)
	}
	a.OnRackEvent(now, power.Event{Kind: power.EventWarning})
	doubled := a.pol.Exploration.Snapshot().Backoff
	if doubled != 2*a.cfg.InitialBackoff {
		t.Fatalf("setup: backoff = %v, want %v", doubled, 2*a.cfg.InitialBackoff)
	}

	// Resume exploring after the back-off, then stop the session mid-flight.
	now = now.Add(a.cfg.InitialBackoff + time.Second)
	a.Tick(now)
	if a.mode != modeExploring || a.ExtraWatts() == 0 {
		t.Fatalf("setup: mode = %v extra = %v, want exploring with surplus", a.mode, a.ExtraWatts())
	}
	a.Stop(now, "vm1")

	now = now.Add(time.Second)
	a.Tick(now)
	if a.mode != modeIdle {
		t.Fatalf("mode = %v, want idle after the last session stopped", a.mode)
	}
	if a.ExtraWatts() != 0 {
		t.Fatalf("extra = %v, want 0: the raised budget was never confirmed", a.ExtraWatts())
	}
	if got := a.pol.Exploration.Snapshot().Backoff; got != doubled {
		t.Fatalf("backoff = %v, want %v (session stop must not reset it)", got, doubled)
	}
}

// TestExplorationContinuesOnRejectDemandWithoutSessions pins the companion
// branch: zero sessions but a recent power-side rejection still counts as
// constrained demand, so the sOA keeps exploring rather than shedding.
func TestExplorationContinuesOnRejectDemandWithoutSessions(t *testing.T) {
	a, h := newTestSOA(0) // zero budget: every request rejects on power
	h.setAllUtil(0.5)
	if d := a.Request(soaStart, ocReq("vm1", 4)); d.Granted {
		t.Fatal("setup: request must reject on power")
	}
	now := soaStart.Add(time.Second)
	a.Tick(now) // constrained via recent reject → explore with no sessions
	if a.mode != modeExploring || a.ExtraWatts() == 0 {
		t.Fatalf("mode = %v extra = %v, want exploring on rejected demand", a.mode, a.ExtraWatts())
	}
	// Still inside the reject window: keep exploring.
	now = now.Add(time.Second)
	a.Tick(now)
	if a.mode != modeExploring {
		t.Fatalf("mode = %v, want still exploring inside the reject window", a.mode)
	}
	// Once the rejection ages out, demand is gone: shed and idle.
	now = now.Add(2*a.cfg.ExploreConfirm + time.Second)
	a.Tick(now)
	if a.mode != modeIdle || a.ExtraWatts() != 0 {
		t.Fatalf("mode = %v extra = %v, want idle with no surplus", a.mode, a.ExtraWatts())
	}
}
