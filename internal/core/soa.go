package core

import (
	"fmt"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/policy"
	"smartoclock/internal/power"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

// AdmissionAudit records one power-side admission decision at the moment it
// was made, with the full modeled arithmetic. The feedback loop later steps
// any over-grant back down to the budget, which would mask an unsafe
// admission policy from steady-state invariants — so the
// AdmissionWithinBudget invariant audits decisions here, at grant time.
type AdmissionAudit struct {
	Server            string
	VM                string
	Time              time.Time
	PredictedWatts    float64
	ActiveDeltaWatts  float64
	RequestDeltaWatts float64
	BudgetWatts       float64
	Granted           bool
	Policy            string
}

// TotalWatts returns the modeled worst-case draw had the request run.
func (a AdmissionAudit) TotalWatts() float64 {
	return a.PredictedWatts + a.ActiveDeltaWatts + a.RequestDeltaWatts
}

// SOAConfig parameterizes a Server Overclocking Agent.
type SOAConfig struct {
	// BufferWatts keeps the feedback loop's hold band below the budget:
	// frequencies rise while draw < budget − BufferWatts and fall while
	// draw > budget.
	BufferWatts float64
	// ExploreStepWatts is the conditional budget increment used when
	// exploring beyond the assigned budget (the paper's example: 20 W).
	ExploreStepWatts float64
	// ExploreConfirm is how long an exploration bump must stay
	// warning-free before the next bump (the paper's example: 30 s).
	ExploreConfirm time.Duration
	// ExploitTime is how long a discovered safe budget is used before
	// re-exploring.
	ExploitTime time.Duration
	// InitialBackoff seeds the exponential back-off applied after a
	// warning interrupts exploration.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential back-off.
	MaxBackoff time.Duration
	// ExhaustionWindow is how far ahead the sOA warns the WI agent about
	// resource exhaustion; it should exceed the time to scale out
	// (the paper's example: 15 min).
	ExhaustionWindow time.Duration
	// DefaultOCHorizon is the assumed duration of an open-ended
	// (metrics-based) session for admission checks.
	DefaultOCHorizon time.Duration
	// AdmissionUtil is the worst-case per-core utilization assumed when
	// predicting a request's power impact (§IV-D uses worst case).
	AdmissionUtil float64
	// ProfileStep is the recording granularity for power and overclock
	// templates.
	ProfileStep time.Duration

	// Naive disables admission control and budget enforcement entirely
	// (the NaiveOClock baseline).
	Naive bool
	// NoExplore disables exploring beyond the assigned budget (the
	// NoFeedback baseline).
	NoExplore bool
	// IgnoreWarnings keeps exploring through rack warnings; only capping
	// events revert the budget (the NoWarning baseline).
	IgnoreWarnings bool
	// AdmitOverride, when non-nil, replaces the power-side admission
	// check (the Central oracle baseline supplies a global-view check).
	// It receives the request and the modeled extra watts.
	AdmitOverride func(req Request, deltaWatts float64) bool
	// WearGate, when non-nil, consults per-core online wear counters in
	// addition to the epoch time budgets (§VI "wear-out counters"): a
	// core whose measured aging has exhausted its envelope cannot be
	// overclocked even if time budget remains.
	WearGate func(core int) bool

	// Policies selects the prediction/admission/exploration strategies.
	// The zero Factory means the paper defaults. Each sOA builds its own
	// Set from the factory, so configs stay safely copyable across agents.
	Policies policy.Factory
	// OnAdmit, when non-nil, receives every power-side admission decision
	// as it is made (granted and rejected alike). The invariant checker's
	// AdmissionWithinBudget sink hangs off this hook.
	OnAdmit func(AdmissionAudit)
}

// DefaultSOAConfig returns the configuration used across the evaluation.
func DefaultSOAConfig() SOAConfig {
	return SOAConfig{
		BufferWatts:      25,
		ExploreStepWatts: 20,
		ExploreConfirm:   30 * time.Second,
		ExploitTime:      5 * time.Minute,
		InitialBackoff:   time.Minute,
		MaxBackoff:       30 * time.Minute,
		ExhaustionWindow: 15 * time.Minute,
		DefaultOCHorizon: 30 * time.Minute,
		AdmissionUtil:    0.9,
		ProfileStep:      5 * time.Minute,
	}
}

// exploreMode is the sOA's exploration state machine (§IV-D).
type exploreMode int

const (
	modeIdle exploreMode = iota
	modeExploring
	modeExploiting
)

// Session is one VM's active overclocking grant.
type Session struct {
	VM        string
	Cores     []int
	TargetMHz int
	Priority  Priority
	Scheduled bool
	StartedAt time.Time
	// currentMHz is the frequency the feedback loop has the session at.
	currentMHz int
	// span is the causal span of the grant that started the session;
	// consequences (an exhaustion stop) are recorded with it as parent.
	span causal.SpanID
}

// CurrentMHz returns the session's present frequency setting.
func (s *Session) CurrentMHz() int { return s.currentMHz }

// SOA is the Server Overclocking Agent: it admits overclocking requests
// against power and lifetime predictions, enforces its power budget with a
// prioritized feedback loop, explores beyond stale budgets, tracks per-core
// overclock time, and warns the WI layer before resources run out.
type SOA struct {
	cfg     SOAConfig
	host    Host
	budgets *lifetime.CoreBudgets

	// assigned is the heterogeneous power budget template from the gOA;
	// staticBudget is used until the first assignment (even share).
	assigned     *timeseries.WeekTemplate
	staticBudget float64

	// powerTemplate is the server's own power prediction used for
	// admission and exhaustion checks.
	powerTemplate *timeseries.WeekTemplate

	// pol holds this agent's policy instances (never shared: they carry
	// per-agent adaptive state). The sOA owns the mode machine and its
	// timers; the policies own the numbers.
	pol policy.Set

	// Exploration state.
	mode          exploreMode
	extraWatts    float64
	nextExploreAt time.Time
	lastBumpAt    time.Time
	exploitUntil  time.Time

	sessions map[string]*Session

	// Profile recording.
	powerRec      *timeseries.Series
	ocRec         *predict.OCRecorder
	slotRequested int
	nextSlotAt    time.Time

	lastTick    time.Time
	hasLastTick bool

	// recentRejectAt records the last power-side rejection; unmet demand
	// counts as "constrained" for the exploration trigger (§IV-D: the sOA
	// explores a higher budget when the assigned budget is insufficient).
	recentRejectAt  time.Time
	hasRecentReject bool

	lastExhaustSignal map[ExhaustionKind]time.Time

	// OnReject is invoked when a request is denied or an active session
	// is stopped for budget exhaustion, so the WI layer can react.
	OnReject func(vm string, reason RejectReason)
	// OnExhaustionSoon is invoked when a resource is predicted to run out
	// within the exhaustion window.
	OnExhaustionSoon func(kind ExhaustionKind, at time.Time)

	// Statistics.
	granted  int
	rejected int

	// obs, when non-nil, holds pre-resolved metric handles and the event
	// tracer (see Instrument in obs.go). Hot paths test the pointer once.
	obs *soaObs

	// prov, when non-nil, receives a causal.Record for every risk decision
	// (see provenance.go); lastBudgetSpan is the record of the most recent
	// budget application, linked from admission verdicts.
	prov           *causal.Recorder
	lastBudgetSpan causal.SpanID

	// sessScratch backs sortedSessions: the ordering is recomputed inside
	// every feedback tick, and reusing the slice keeps the per-tick hot
	// path allocation-free.
	sessScratch []*Session
}

// NewSOA creates an sOA for host with per-core overclock budgets budgets.
// The initial power budget is staticBudget (typically the rack's even
// share) until the gOA assigns a heterogeneous template.
func NewSOA(cfg SOAConfig, host Host, budgets *lifetime.CoreBudgets, staticBudget float64, start time.Time) *SOA {
	if cfg.ProfileStep <= 0 {
		panic(fmt.Sprintf("core: non-positive ProfileStep %v", cfg.ProfileStep))
	}
	factory := cfg.Policies
	if factory.New == nil {
		factory = policy.Default()
	}
	return &SOA{
		cfg:          cfg,
		host:         host,
		budgets:      budgets,
		staticBudget: staticBudget,
		pol: factory.New(policy.Params{
			StepWatts:      cfg.ExploreStepWatts,
			InitialBackoff: cfg.InitialBackoff,
			MaxBackoff:     cfg.MaxBackoff,
		}),
		sessions:          make(map[string]*Session),
		powerRec:          timeseries.New(start, cfg.ProfileStep),
		ocRec:             predict.NewOCRecorder(start, cfg.ProfileStep),
		nextSlotAt:        start.Add(cfg.ProfileStep),
		lastExhaustSignal: make(map[ExhaustionKind]time.Time),
	}
}

// Policies returns the agent's live policy instances (for reports and
// tests). Callers must not share them with another agent.
func (a *SOA) Policies() policy.Set { return a.pol }

// Name returns the host's name.
func (a *SOA) Name() string { return a.host.Name() }

// Granted and Rejected return the admission counters.
func (a *SOA) Granted() int { return a.granted }

// Rejected returns how many requests were denied.
func (a *SOA) Rejected() int { return a.rejected }

// Sessions returns the active sessions keyed by VM.
func (a *SOA) Sessions() map[string]*Session { return a.sessions }

// ActiveOCCores returns the number of cores currently overclocked.
func (a *SOA) ActiveOCCores() int {
	n := 0
	for _, s := range a.sessions {
		if s.currentMHz > a.host.TurboMHz() {
			n += len(s.Cores)
		}
	}
	return n
}

// SetAssignedBudget installs a heterogeneous budget template from the gOA.
func (a *SOA) SetAssignedBudget(t *timeseries.WeekTemplate) { a.assigned = t }

// SetPowerTemplate installs the server's own power prediction template.
func (a *SOA) SetPowerTemplate(t *timeseries.WeekTemplate) { a.powerTemplate = t }

// BudgetAt returns the enforced power budget at ts: the assigned budget
// (or static even share) plus any exploration extra.
func (a *SOA) BudgetAt(ts time.Time) float64 {
	base := a.staticBudget
	if a.assigned != nil {
		if v := a.assigned.At(ts); v > 0 {
			base = v
		}
	}
	return base + a.extraWatts
}

// ExtraWatts returns the current exploration surplus.
func (a *SOA) ExtraWatts() float64 { return a.extraWatts }

// predictInput assembles the evidence the Predictor policy consults.
func (a *SOA) predictInput() policy.PredictInput {
	return policy.PredictInput{
		Template:     a.powerTemplate,
		Step:         a.cfg.ProfileStep,
		CurrentWatts: a.host.Power(),
	}
}

// predictedBaseline returns the predicted non-overclocked server power over
// the admission horizon, as forecast by the Predictor policy (the default
// policy takes the max of the template over [now, now+horizon], falling back
// to the current reading when no template exists yet).
func (a *SOA) predictedBaseline(now time.Time, horizon time.Duration) float64 {
	return a.pol.Predictor.Baseline(now, horizon, a.predictInput())
}

// currentOCDelta returns the modeled extra watts of all active sessions at
// the admission utilization.
func (a *SOA) currentOCDelta() float64 {
	total := 0.0
	for _, s := range a.sessions {
		total += a.host.OCDeltaWatts(len(s.Cores), s.TargetMHz, a.cfg.AdmissionUtil)
	}
	return total
}

// Request performs admission control (§IV-B) and starts a session when
// granted: lifetime budget first, then predicted power against the
// assigned budget.
func (a *SOA) Request(now time.Time, req Request) Decision {
	a.obsRequest()
	if err := req.Validate(); err != nil {
		a.rejected++
		a.obsReject(now, req.VM, RejectInvalid)
		a.provReject(now, req, RejectInvalid, nil, "")
		return Decision{Reason: RejectInvalid}
	}
	a.slotRequested += req.Cores
	if _, exists := a.sessions[req.VM]; exists {
		a.rejected++
		a.obsReject(now, req.VM, RejectDuplicate)
		a.provReject(now, req, RejectDuplicate, nil, "")
		return Decision{Reason: RejectDuplicate}
	}
	target := req.TargetMHz
	if target > a.host.MaxOCMHz() {
		target = a.host.MaxOCMHz()
	}

	if a.cfg.Naive {
		return a.start(now, req, target, nil, nil)
	}

	// Lifetime admission: every overclocked core must have enough
	// remaining epoch budget for the expected duration. Preferred cores
	// (the VM's own) are used when they have headroom; otherwise the sOA
	// reschedules onto cores that do.
	horizon := req.Duration
	if horizon <= 0 {
		horizon = a.cfg.DefaultOCHorizon
	}
	a.budgets.Advance(now)
	var cores []int
	if len(req.PreferredCores) >= req.Cores {
		ok := true
		for _, c := range req.PreferredCores[:req.Cores] {
			if c < 0 || c >= a.host.NumCores() || a.budgets.Core(c).Remaining() < horizon ||
				(a.cfg.WearGate != nil && !a.cfg.WearGate(c)) {
				ok = false
				break
			}
		}
		if ok {
			cores = append([]int(nil), req.PreferredCores[:req.Cores]...)
		}
	}
	if cores == nil {
		cores = a.budgets.FindCoresFiltered(req.Cores, horizon, a.cfg.WearGate)
	}
	if cores == nil {
		a.rejected++
		a.obsReject(now, req.VM, RejectLifetime)
		a.provReject(now, req, RejectLifetime, nil, "")
		a.notifyReject(req.VM, RejectLifetime)
		return Decision{Reason: RejectLifetime}
	}

	// Power admission: predicted baseline plus all overclock deltas must
	// fit the budget.
	delta := a.host.OCDeltaWatts(req.Cores, target, a.cfg.AdmissionUtil)
	var admitIn *policy.AdmitInput
	if a.cfg.AdmitOverride != nil {
		if !a.cfg.AdmitOverride(req, delta) {
			a.rejected++
			a.obsReject(now, req.VM, RejectPower)
			a.provReject(now, req, RejectPower, nil, "override")
			a.notifyReject(req.VM, RejectPower)
			return Decision{Reason: RejectPower}
		}
	} else {
		in := policy.AdmitInput{
			Now:               now,
			PredictedWatts:    a.predictedBaseline(now, horizon),
			ActiveDeltaWatts:  a.currentOCDelta(),
			RequestDeltaWatts: delta,
			BudgetWatts:       a.BudgetAt(now),
			RequestCores:      req.Cores,
		}
		granted := a.pol.Admission.Admit(in)
		if a.cfg.OnAdmit != nil {
			a.cfg.OnAdmit(AdmissionAudit{
				Server:            a.host.Name(),
				VM:                req.VM,
				Time:              now,
				PredictedWatts:    in.PredictedWatts,
				ActiveDeltaWatts:  in.ActiveDeltaWatts,
				RequestDeltaWatts: in.RequestDeltaWatts,
				BudgetWatts:       in.BudgetWatts,
				Granted:           granted,
				Policy:            a.pol.Admission.Name(),
			})
		}
		if !granted {
			a.rejected++
			a.recentRejectAt = now
			a.hasRecentReject = true
			a.obsReject(now, req.VM, RejectPower)
			a.provReject(now, req, RejectPower, &in, a.pol.Admission.Name())
			a.notifyReject(req.VM, RejectPower)
			return Decision{Reason: RejectPower}
		}
		admitIn = &in
	}

	// Scheduled requests reserve their overclock time budget up front for
	// a predictable experience.
	if req.Priority == PriorityScheduled && req.Duration > 0 {
		for _, c := range cores {
			if !a.budgets.Core(c).Reserve(req.Duration) {
				// Roll back reservations made so far.
				for _, cc := range cores {
					if cc == c {
						break
					}
					a.budgets.Core(cc).ReleaseReservation(req.Duration)
				}
				a.rejected++
				a.obsReject(now, req.VM, RejectLifetime)
				a.provReject(now, req, RejectLifetime, nil, "")
				a.notifyReject(req.VM, RejectLifetime)
				return Decision{Reason: RejectLifetime}
			}
		}
	}
	return a.start(now, req, target, cores, admitIn)
}

// start creates the session and applies the target frequency. cores may be
// nil (naive mode), in which case the first req.Cores indices are used.
// admitIn carries the power-admission arithmetic for the grant's
// provenance record (nil on the naive and override paths).
func (a *SOA) start(now time.Time, req Request, target int, cores []int, admitIn *policy.AdmitInput) Decision {
	if cores == nil {
		n := req.Cores
		if n > a.host.NumCores() {
			n = a.host.NumCores()
		}
		cores = make([]int, n)
		for i := range cores {
			cores[i] = i
		}
	}
	pol := ""
	if admitIn != nil {
		pol = a.pol.Admission.Name()
	}
	s := &Session{
		VM: req.VM, Cores: cores, TargetMHz: target,
		Priority: req.Priority, Scheduled: req.Priority == PriorityScheduled,
		StartedAt: now, currentMHz: target,
		span: a.provGrant(now, req, target, len(cores), admitIn, pol),
	}
	a.sessions[req.VM] = s
	for _, c := range cores {
		a.host.SetDesiredFreq(c, target)
	}
	a.granted++
	a.obsGrant(len(cores))
	return Decision{Granted: true, Cores: cores}
}

// Stop ends a VM's overclocking session, returning cores to turbo.
func (a *SOA) Stop(now time.Time, vm string) {
	s, ok := a.sessions[vm]
	if !ok {
		return
	}
	for _, c := range s.Cores {
		a.host.SetDesiredFreq(c, a.host.TurboMHz())
	}
	delete(a.sessions, vm)
}

func (a *SOA) notifyReject(vm string, reason RejectReason) {
	if a.OnReject != nil {
		a.OnReject(vm, reason)
	}
}

// OnRackEvent handles rack manager notifications: warnings interrupt
// exploration with exponential back-off; capping events revert to the
// assigned budget (§IV-D).
func (a *SOA) OnRackEvent(now time.Time, ev power.Event) {
	switch ev.Kind {
	case power.EventWarning:
		// "An sOA ignores the message if it is not exploring" (§IV-D).
		// We read "exploring" as holding any budget beyond the assigned
		// one: an sOA exploiting a previously discovered surplus is still
		// the reason the rack is near its limit, so it backs off too.
		// Servers with no exploration surplus ignore the warning.
		if a.cfg.IgnoreWarnings || (a.mode != modeExploring && a.extraWatts == 0) {
			return
		}
		a.applySetback(now, false)
		a.obsWarnBackoff(now)
		a.provSetback(now, ev.Span, false)
		// Shed immediately: the whole point of the warning is avoiding
		// the capping event that would otherwise follow within seconds.
		a.feedbackLoop(now)
	case power.EventCap:
		if a.cfg.Naive {
			return
		}
		a.applySetback(now, true)
		a.obsCapReset(now)
		a.provSetback(now, ev.Span, true)
		a.feedbackLoop(now)
	}
}

// applySetback consults the Exploration policy after a rack warning or cap,
// clamps the surplus it wants to retain into [0, extraWatts] (a cap always
// sheds everything), and schedules the back-off.
func (a *SOA) applySetback(now time.Time, capped bool) {
	keep, wait := a.pol.Exploration.Setback(now, capped, a.extraWatts)
	if capped || keep < 0 {
		keep = 0
	}
	if keep > a.extraWatts {
		keep = a.extraWatts
	}
	a.extraWatts = keep
	a.mode = modeIdle
	a.nextExploreAt = now.Add(wait)
}

// sortedSessions returns active sessions ordered low→high priority
// (stable by VM name for determinism). The returned slice is the sOA's
// scratch buffer: valid until the next call, never retained by callers.
func (a *SOA) sortedSessions() []*Session {
	out := a.sessScratch[:0]
	for _, s := range a.sessions {
		out = append(out, s)
	}
	a.sessScratch = out
	// Insertion sort: a server hosts at most a handful of sessions, and
	// unlike sort.Slice this keeps the per-tick path allocation-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && sessBefore(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// sessBefore orders sessions low→high priority, ties broken by VM name.
func sessBefore(a, b *Session) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.VM < b.VM
}

// applyFreq pushes a session's current frequency to its cores.
func (a *SOA) applyFreq(s *Session) {
	for _, c := range s.Cores {
		a.host.SetDesiredFreq(c, s.currentMHz)
	}
}

// Tick runs one control cycle at now: consume overclock time, run the
// prioritized feedback loop, manage exploration, record the profile and
// raise exhaustion warnings. dt is the time since the previous tick.
func (a *SOA) Tick(now time.Time) {
	var dt time.Duration
	if a.hasLastTick {
		dt = now.Sub(a.lastTick)
	}
	a.lastTick = now
	a.hasLastTick = true

	a.budgets.Advance(now)
	if dt > 0 && !a.cfg.Naive {
		a.consumeOCTime(now, dt)
	}
	a.feedbackLoop(now)
	if !a.cfg.Naive && !a.cfg.NoExplore {
		a.manageExploration(now)
	}
	a.recordProfile(now)
	if !a.cfg.Naive {
		a.checkExhaustion(now)
	}
	a.obsTick(now)
}

// consumeOCTime charges each overclocked core's epoch budget and stops
// sessions whose budget ran out, migrating to fresh cores when possible
// (§IV-D).
func (a *SOA) consumeOCTime(now time.Time, dt time.Duration) {
	for vm, s := range a.sessions {
		if s.currentMHz <= a.host.TurboMHz() {
			continue
		}
		exhausted := false
		if a.cfg.WearGate != nil {
			for _, c := range s.Cores {
				if !a.cfg.WearGate(c) {
					exhausted = true // wear counters closed on this core
					break
				}
			}
		}
		for _, c := range s.Cores {
			if !a.budgets.Core(c).Consume(dt, s.Scheduled) {
				// Scheduled reservations may have expired with an epoch;
				// fall back to unreserved budget before giving up.
				if s.Scheduled && a.budgets.Core(c).Consume(dt, false) {
					continue
				}
				exhausted = true
			}
		}
		if !exhausted {
			continue
		}
		// Try rescheduling the VM onto cores with remaining budget (and
		// open wear gates).
		if fresh := a.budgets.FindCoresFiltered(len(s.Cores), a.cfg.DefaultOCHorizon, a.cfg.WearGate); fresh != nil {
			for _, c := range s.Cores {
				a.host.SetDesiredFreq(c, a.host.TurboMHz())
			}
			s.Cores = fresh
			a.applyFreq(s)
			continue
		}
		a.Stop(now, vm)
		a.obsSessionExhausted(now, vm)
		a.provSessionStop(now, vm, s.span)
		a.notifyReject(vm, RejectLifetime)
	}
}

// feedbackLoop adjusts session frequencies in discrete steps to keep the
// server draw inside [budget − buffer, budget], prioritizing important VMs
// (§IV-D).
func (a *SOA) feedbackLoop(now time.Time) {
	if len(a.sessions) == 0 {
		return
	}
	if a.cfg.Naive {
		// No budget enforcement: run every session at target.
		for _, s := range a.sessions {
			if s.currentMHz != s.TargetMHz {
				s.currentMHz = s.TargetMHz
				a.applyFreq(s)
			}
		}
		return
	}
	budget := a.BudgetAt(now)
	threshold := budget - a.cfg.BufferWatts
	draw := a.host.Power()
	step := a.host.StepMHz()
	turbo := a.host.TurboMHz()

	switch {
	case draw > budget:
		// Reduce lowest-priority overclocked sessions first, stepping
		// each all the way to turbo before touching the next, so the more
		// important VMs keep their overclock to the maximum extent.
		for _, s := range a.sortedSessions() {
			for s.currentMHz > turbo && draw > budget {
				s.currentMHz -= step
				if s.currentMHz < turbo {
					s.currentMHz = turbo
				}
				a.applyFreq(s)
				draw = a.host.Power()
			}
			if draw <= budget {
				break
			}
		}
	case draw < threshold:
		// Raise sessions one step each, highest priority first, while the
		// draw stays inside the hold band.
		ordered := a.sortedSessions()
		for i := len(ordered) - 1; i >= 0; i-- {
			s := ordered[i]
			if s.currentMHz >= s.TargetMHz {
				continue
			}
			s.currentMHz += step
			if s.currentMHz > s.TargetMHz {
				s.currentMHz = s.TargetMHz
			}
			a.applyFreq(s)
			draw = a.host.Power()
			if draw >= threshold {
				break
			}
		}
	}
}

// constrained reports whether any session runs below its target frequency
// or a power-side rejection happened recently (unmet admission demand).
func (a *SOA) constrained() bool {
	for _, s := range a.sessions {
		if s.currentMHz < s.TargetMHz {
			return true
		}
	}
	if a.hasRecentReject && a.hasLastTick &&
		a.lastTick.Sub(a.recentRejectAt) <= 2*a.cfg.ExploreConfirm {
		return true
	}
	return false
}

// manageExploration advances the exploration/exploitation state machine
// (§IV-D): conditionally raise the budget in steps, confirm each step stays
// warning-free, exploit the discovered budget for a while, re-explore when
// needed.
func (a *SOA) manageExploration(now time.Time) {
	switch a.mode {
	case modeIdle:
		if !a.constrained() || now.Before(a.nextExploreAt) {
			return
		}
		a.mode = modeExploring
		a.extraWatts += a.pol.Exploration.Step(now)
		a.lastBumpAt = now
		a.obsExploreBump(now)
		a.provExplore(now, "bump")
	case modeExploring:
		if len(a.sessions) == 0 && !a.constrained() {
			// Every session stopped mid-exploration and no demand is
			// pending. Nothing ran at the raised budget, so it was never
			// confirmed safe: shed the surplus and return to idle without
			// resetting the back-off. (Treating this as a success used to
			// exploit an unconfirmed budget and wipe the back-off.)
			a.extraWatts = 0
			a.mode = modeIdle
			return
		}
		if !a.constrained() {
			// Everything reached target: the budget is safe — exploit it.
			a.mode = modeExploiting
			a.exploitUntil = now.Add(a.cfg.ExploitTime)
			a.pol.Exploration.Confirmed(now)
			a.obsExploit(now)
			a.provExplore(now, "exploit")
			return
		}
		if now.Sub(a.lastBumpAt) >= a.cfg.ExploreConfirm {
			a.extraWatts += a.pol.Exploration.Step(now)
			a.lastBumpAt = now
			a.obsExploreBump(now)
			a.provExplore(now, "bump")
		}
	case modeExploiting:
		if now.After(a.exploitUntil) {
			a.mode = modeIdle
		}
	}
}

// recordProfile closes profile slots that have elapsed.
func (a *SOA) recordProfile(now time.Time) {
	for !now.Before(a.nextSlotAt) {
		p := a.host.Power()
		a.powerRec.Append(p)
		// The predictor forecasts the non-overclocked baseline, and
		// admission adds the modeled overclock deltas back on top — so
		// observations are corrected by the modeled draw of the active
		// sessions to avoid double-counting overclock power.
		obs := p - a.currentOCDelta()
		if obs < 0 {
			obs = 0
		}
		a.pol.Predictor.Observe(a.nextSlotAt, obs)
		a.ocRec.Record(a.slotRequested, a.ActiveOCCores())
		a.slotRequested = 0
		a.nextSlotAt = a.nextSlotAt.Add(a.cfg.ProfileStep)
	}
}

// Profile returns the templates the sOA periodically ships to the gOA.
// It requires at least one full recorded slot.
func (a *SOA) Profile() (power *timeseries.WeekTemplate, oc *predict.OCTemplate) {
	return timeseries.BuildWeekTemplate(a.powerRec, timeseries.ReduceMedian), a.ocRec.Template()
}

// PowerRecord exposes the raw recorded power series (for analysis).
func (a *SOA) PowerRecord() *timeseries.Series { return a.powerRec }

// RecentRequestedCores returns the mean number of cores that requested
// overclocking over the last n profile slots — including rejected demand,
// which is what lets the gOA route headroom toward constrained servers.
func (a *SOA) RecentRequestedCores(n int) float64 {
	vals := a.ocRec.Requested().Values
	if len(vals) == 0 {
		return float64(a.slotRequested)
	}
	if len(vals) > n {
		vals = vals[len(vals)-n:]
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// checkExhaustion predicts power and overclock-budget exhaustion within the
// configured window and signals the WI layer at most once per window
// (§IV-D, Fig 11).
func (a *SOA) checkExhaustion(now time.Time) {
	if a.OnExhaustionSoon == nil || len(a.sessions) == 0 {
		return
	}
	window := a.cfg.ExhaustionWindow
	// Power: find the first slot where predicted baseline + overclock
	// delta exceeds the budget.
	if a.powerTemplate != nil {
		delta := a.currentOCDelta()
		step := a.cfg.ProfileStep
		in := a.predictInput()
		for ts := now; !ts.After(now.Add(window)); ts = ts.Add(step) {
			if a.pol.Predictor.At(ts, in)+delta > a.BudgetAt(ts) {
				a.signalExhaustion(now, ExhaustPower, ts)
				break
			}
		}
	}
	// Overclock time budget: project the burn rate of active sessions.
	ocCores := a.ActiveOCCores()
	if ocCores > 0 {
		var minRemaining time.Duration = -1
		for _, s := range a.sessions {
			if s.currentMHz <= a.host.TurboMHz() {
				continue
			}
			for _, c := range s.Cores {
				r := a.budgets.Core(c).Total()
				if minRemaining < 0 || r < minRemaining {
					minRemaining = r
				}
			}
		}
		if minRemaining >= 0 && minRemaining < window {
			a.signalExhaustion(now, ExhaustOCBudget, now.Add(minRemaining))
		}
	}
}

func (a *SOA) signalExhaustion(now time.Time, kind ExhaustionKind, at time.Time) {
	if last, ok := a.lastExhaustSignal[kind]; ok && now.Sub(last) < a.cfg.ExhaustionWindow {
		return
	}
	a.lastExhaustSignal[kind] = now
	a.obsExhaustionSignal(now, kind, at)
	a.OnExhaustionSoon(kind, at)
}

// SetStaticBudget replaces the fallback power budget used when no assigned
// template covers the queried instant (and clears any assigned template if
// clearAssigned is true).
func (a *SOA) SetStaticBudget(watts float64, clearAssigned bool) {
	a.staticBudget = watts
	if clearAssigned {
		a.assigned = nil
	}
}
