package core

import (
	"fmt"
	"testing"
)

// TestSortedSessionsSteadyStateAllocs guards the per-tick hot path: the
// feedback loop calls sortedSessions on every tick of every server, and
// the scratch-buffer reuse plus the insertion sort must keep it free of
// steady-state allocations. A regression here multiplies across
// servers x ticks x racks in the fleet simulation.
func TestSortedSessionsSteadyStateAllocs(t *testing.T) {
	a, h := newTestSOA(10000)
	h.setAllUtil(0.5)
	for i := 0; i < 4; i++ {
		d := a.Request(soaStart, ocReq(fmt.Sprintf("vm%d", i), 1))
		if !d.Granted {
			t.Fatalf("session %d rejected: %+v", i, d)
		}
	}
	a.sortedSessions() // first call grows the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		a.sortedSessions()
	})
	if allocs != 0 {
		t.Fatalf("sortedSessions allocates %.1f objects per call, want 0", allocs)
	}
}

func TestSortedSessionsOrdering(t *testing.T) {
	a, h := newTestSOA(10000)
	h.setAllUtil(0.5)
	for i, p := range []Priority{PriorityMetric, PriorityScheduled, PriorityMetric} {
		req := ocReq(fmt.Sprintf("vm%d", 2-i), 1)
		req.Priority = p
		if d := a.Request(soaStart, req); !d.Granted {
			t.Fatalf("session %d rejected: %+v", i, d)
		}
	}
	got := a.sortedSessions()
	if len(got) != 3 {
		t.Fatalf("sessions = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if sessBefore(got[i], got[i-1]) {
			t.Fatalf("order violated at %d: %v/%s before %v/%s",
				i, got[i-1].Priority, got[i-1].VM, got[i].Priority, got[i].VM)
		}
	}
}
