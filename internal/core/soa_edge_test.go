package core

import (
	"testing"
	"time"

	"smartoclock/internal/lifetime"
	"smartoclock/internal/power"
)

// TestRequestEdgeCases drives SOA.Request through the admission corner
// cases table-style: each case builds its own sOA in the relevant state and
// asserts the decision (and that rejection never mutates session state).
func TestRequestEdgeCases(t *testing.T) {
	cases := []struct {
		name        string
		setup       func(t *testing.T) (*SOA, Request, time.Time)
		wantGranted bool
		wantReason  RejectReason
	}{
		{
			// A fresh sOA with a zero assigned budget must reject on power:
			// the baseline alone exceeds an empty budget.
			name: "zero assigned budget",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				a, h := newTestSOA(0)
				h.setAllUtil(0.5)
				return a, ocReq("vm1", 2), soaStart
			},
			wantReason: RejectPower,
		},
		{
			// Budget zero but the request itself adds nothing (target at
			// turbo): still rejected — the baseline doesn't fit either.
			name: "zero budget zero-delta request",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				a, h := newTestSOA(0)
				h.setAllUtil(0.5)
				return a, Request{VM: "vm1", Cores: 1, TargetMHz: h.TurboMHz(), Priority: PriorityMetric}, soaStart
			},
			wantReason: RejectPower,
		},
		{
			// Every core's per-epoch overclock time has been burned by an
			// earlier session: the next request must reject on lifetime,
			// not power (the power budget is generous).
			name: "exhausted per-core lifetime budget",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				h := newFakeHost("s1")
				cfg := DefaultSOAConfig()
				cfg.DefaultOCHorizon = time.Minute
				bcfg := lifetime.BudgetConfig{Epoch: 100 * time.Hour, Fraction: 2.0 / 60 / 100} // 2 min/core
				budgets := lifetime.NewCoreBudgets(bcfg, h.NumCores(), soaStart)
				a := NewSOA(cfg, h, budgets, 10000, soaStart)
				h.setAllUtil(0.5)
				if d := a.Request(soaStart, ocReq("burn", 8)); !d.Granted {
					t.Fatalf("setup burn session rejected: %+v", d)
				}
				now := soaStart
				for i := 0; i < 10 && len(a.Sessions()) > 0; i++ {
					now = now.Add(time.Minute)
					a.Tick(now)
				}
				if len(a.Sessions()) != 0 {
					t.Fatal("setup: burn session never exhausted")
				}
				return a, ocReq("vm1", 1), now
			},
			wantReason: RejectLifetime,
		},
		{
			// A rack warning just shed the exploration surplus and started
			// the back-off: a request arriving during the alert sees only
			// the (zero) assigned budget and must be rejected.
			name: "request during rack alert",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				a, h := newTestSOA(0)
				h.setAllUtil(0.5)
				a.cfg.AdmitOverride = func(Request, float64) bool { return true }
				if d := a.Request(soaStart, ocReq("vm1", 4)); !d.Granted {
					t.Fatal("setup grant failed")
				}
				now := soaStart.Add(time.Second)
				a.Tick(now) // constrained → exploring, extra > 0
				if a.ExtraWatts() == 0 {
					t.Fatal("setup: exploration surplus missing")
				}
				a.OnRackEvent(now, power.Event{Kind: power.EventWarning})
				if a.ExtraWatts() != 0 {
					t.Fatal("setup: warning did not shed the surplus")
				}
				a.cfg.AdmitOverride = nil // back to local admission
				return a, ocReq("vm2", 2), now.Add(time.Second)
			},
			wantReason: RejectPower,
		},
		{
			// After a cap event the surplus resets too — same rejection.
			name: "request after rack cap",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				a, h := newTestSOA(0)
				h.setAllUtil(0.5)
				a.cfg.AdmitOverride = func(Request, float64) bool { return true }
				a.Request(soaStart, ocReq("vm1", 4))
				now := soaStart.Add(time.Second)
				a.Tick(now)
				a.OnRackEvent(now, power.Event{Kind: power.EventCap})
				a.cfg.AdmitOverride = nil
				return a, ocReq("vm2", 2), now.Add(time.Second)
			},
			wantReason: RejectPower,
		},
		{
			// More cores than the machine has: no core set can satisfy the
			// lifetime check.
			name: "request exceeds machine cores",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				a, h := newTestSOA(10000)
				h.setAllUtil(0.3)
				return a, ocReq("vm1", h.NumCores()+1), soaStart
			},
			wantReason: RejectLifetime,
		},
		{
			// Preferred cores out of range must not panic — the sOA falls
			// back to scheduling onto valid cores.
			name: "preferred cores out of range fall back",
			setup: func(t *testing.T) (*SOA, Request, time.Time) {
				a, h := newTestSOA(10000)
				h.setAllUtil(0.3)
				req := ocReq("vm1", 2)
				req.PreferredCores = []int{-1, 999}
				return a, req, soaStart
			},
			wantGranted: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, req, now := tc.setup(t)
			sessionsBefore := len(a.Sessions())
			d := a.Request(now, req)
			if d.Granted != tc.wantGranted {
				t.Fatalf("granted = %v, want %v (decision %+v)", d.Granted, tc.wantGranted, d)
			}
			if !tc.wantGranted {
				if d.Reason != tc.wantReason {
					t.Fatalf("reason = %v, want %v", d.Reason, tc.wantReason)
				}
				if len(a.Sessions()) != sessionsBefore {
					t.Fatal("rejected request changed session state")
				}
				if len(d.Cores) != 0 {
					t.Fatalf("rejected decision carries cores %v", d.Cores)
				}
			}
		})
	}
}

// TestStopUnknownVMIsNoOp: stopping a VM that has no session must not
// panic, must not touch other sessions and must not move counters.
func TestStopUnknownVMIsNoOp(t *testing.T) {
	a, h := newTestSOA(1000)
	h.setAllUtil(0.4)
	d := a.Request(soaStart, ocReq("vm1", 2))
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	granted, rejected := a.Granted(), a.Rejected()
	a.Stop(soaStart.Add(time.Second), "no-such-vm")
	if len(a.Sessions()) != 1 {
		t.Fatal("unknown-VM stop removed a session")
	}
	if h.DesiredFreq(d.Cores[0]) != 4000 {
		t.Fatal("unknown-VM stop touched core frequencies")
	}
	if a.Granted() != granted || a.Rejected() != rejected {
		t.Fatal("unknown-VM stop moved counters")
	}
	// And on an empty sOA too.
	b, _ := newTestSOA(1000)
	b.Stop(soaStart, "ghost")
}

// TestTickEdgeCases: ticking with no sessions, and ticking twice at the
// same instant (zero elapsed time), must be harmless — no panics, no
// budget charged, no frequency changes.
func TestTickEdgeCases(t *testing.T) {
	a, h := newTestSOA(1000)
	h.setAllUtil(0.4)
	a.Tick(soaStart.Add(time.Second)) // no sessions: nothing to do
	if len(a.Sessions()) != 0 {
		t.Fatal("tick invented a session")
	}

	d := a.Request(soaStart.Add(time.Second), ocReq("vm1", 2))
	if !d.Granted {
		t.Fatal("setup grant failed")
	}
	now := soaStart.Add(2 * time.Second)
	a.Tick(now)
	remaining := a.budgets.Core(d.Cores[0]).Remaining()
	freq := h.DesiredFreq(d.Cores[0])
	a.Tick(now) // zero dt: must not double-charge
	if got := a.budgets.Core(d.Cores[0]).Remaining(); got != remaining {
		t.Fatalf("zero-dt tick charged budget: %v -> %v", remaining, got)
	}
	if h.DesiredFreq(d.Cores[0]) != freq {
		t.Fatal("zero-dt tick changed frequency")
	}
}
