package core

import (
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/policy"
)

// This file wires the agent hierarchy into the decision-provenance layer
// (internal/causal). Like the obs instruments, the recorder is a nil-able
// field: uninstrumented agents pay one pointer test per decision site and
// emit nothing, preserving the zero-observer-effect contract. Every risk
// decision — admission verdicts, exploration moves, setbacks, session
// stops, budget computations — emits one causal.Record whose Parent span
// names the message or decision that caused it.

// AttachProvenance points the sOA at a provenance recorder. Pass nil to
// detach.
func (a *SOA) AttachProvenance(rec *causal.Recorder) { a.prov = rec }

// LastBudgetSpan returns the span of the most recent budget application
// recorded via NoteBudget (0 when provenance is off or no budget arrived).
func (a *SOA) LastBudgetSpan() uint64 { return uint64(a.lastBudgetSpan) }

// NoteBudget records the application of a gOA budget to this sOA: parent
// is the span of the budget message (or broadcast record) that delivered
// it. Subsequent admission verdicts link to this record, tying every
// grant/deny to the budget it was judged against.
func (a *SOA) NoteBudget(now time.Time, watts float64, parent uint64) {
	if a.prov == nil {
		return
	}
	a.lastBudgetSpan = a.prov.Emit(causal.Record{
		Parent:    causal.SpanID(parent),
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "soa",
		Site:      "soa.budget",
		Subject:   a.host.Name(),
		Verdict:   "apply",
		Inputs:    []causal.Input{causal.In("budget_watts", watts)},
	})
}

// admitLinks returns the budget link-set of an admission verdict.
func (a *SOA) admitLinks() []causal.SpanID {
	if a.lastBudgetSpan == 0 {
		return nil
	}
	return []causal.SpanID{a.lastBudgetSpan}
}

// provReject records a denied admission. in is nil on the pre-power
// rejections (invalid, duplicate, lifetime) and the AdmitOverride path.
func (a *SOA) provReject(now time.Time, req Request, reason RejectReason, in *policy.AdmitInput, pol string) {
	if a.prov == nil {
		return
	}
	rec := causal.Record{
		Parent:    causal.SpanID(req.Span),
		Links:     a.admitLinks(),
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "soa",
		Site:      "soa.admit",
		Subject:   req.VM,
		Policy:    pol,
		Verdict:   "deny",
		Detail:    string(reason),
	}
	if in != nil {
		rec.Inputs = []causal.Input{
			causal.In("predicted_watts", in.PredictedWatts),
			causal.In("active_delta_watts", in.ActiveDeltaWatts),
			causal.In("request_delta_watts", in.RequestDeltaWatts),
			causal.In("budget_watts", in.BudgetWatts),
			causal.In("request_cores", float64(in.RequestCores)),
		}
	}
	a.prov.Emit(rec)
}

// provGrant records a granted admission and returns its span, which the
// session keeps so later consequences (a budget-exhaustion stop) chain
// back to the grant.
func (a *SOA) provGrant(now time.Time, req Request, target int, cores int, in *policy.AdmitInput, pol string) causal.SpanID {
	if a.prov == nil {
		return 0
	}
	rec := causal.Record{
		Parent:    causal.SpanID(req.Span),
		Links:     a.admitLinks(),
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "soa",
		Site:      "soa.admit",
		Subject:   req.VM,
		Policy:    pol,
		Verdict:   "grant",
	}
	rec.Inputs = []causal.Input{
		causal.In("cores", float64(cores)),
		causal.In("target_mhz", float64(target)),
	}
	if in != nil {
		rec.Inputs = append(rec.Inputs,
			causal.In("predicted_watts", in.PredictedWatts),
			causal.In("active_delta_watts", in.ActiveDeltaWatts),
			causal.In("request_delta_watts", in.RequestDeltaWatts),
			causal.In("budget_watts", in.BudgetWatts),
		)
	}
	return a.prov.Emit(rec)
}

// provSessionStop records a session stopped because its per-core overclock
// time budget (or wear envelope) ran out; parent is the grant that started
// it.
func (a *SOA) provSessionStop(now time.Time, vm string, grant causal.SpanID) {
	if a.prov == nil {
		return
	}
	a.prov.Emit(causal.Record{
		Parent:    grant,
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "soa",
		Site:      "soa.session",
		Subject:   vm,
		Verdict:   "stop",
		Detail:    string(RejectLifetime),
	})
}

// provSetback records the exploration setback applied after a rack warning
// or cap event; parent is the rack event's span, closing the
// cap → budget-revert causal edge.
func (a *SOA) provSetback(now time.Time, parent uint64, capped bool) {
	if a.prov == nil {
		return
	}
	verdict, site := "backoff", "soa.backoff"
	if capped {
		verdict, site = "reset", "soa.capreset"
	}
	a.prov.Emit(causal.Record{
		Parent:    causal.SpanID(parent),
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "soa",
		Site:      site,
		Subject:   a.host.Name(),
		Policy:    a.pol.Exploration.Name(),
		Verdict:   verdict,
		Inputs:    []causal.Input{causal.In("kept_extra_watts", a.extraWatts)},
	})
}

// provExplore records an exploration-machine move (bump or exploit).
func (a *SOA) provExplore(now time.Time, verdict string) {
	if a.prov == nil {
		return
	}
	a.prov.Emit(causal.Record{
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "soa",
		Site:      "soa.explore",
		Subject:   a.host.Name(),
		Policy:    a.pol.Exploration.Name(),
		Verdict:   verdict,
		Inputs:    []causal.Input{causal.In("extra_watts", a.extraWatts)},
	})
}

// AttachProvenance points the gOA at a provenance recorder.
func (g *GOA) AttachProvenance(rec *causal.Recorder) { g.prov = rec }

// NoteProfile marks the receipt of an sOA profile message: the next budget
// broadcast records this span as its parent, chaining budget replies back
// to the profile reports that shaped them.
func (g *GOA) NoteProfile(span uint64) {
	if g.prov == nil || span == 0 {
		return
	}
	g.lastProfileSpan = causal.SpanID(span)
}

// ProvenanceBroadcast records one budget push to a server and returns the
// record's span, which the harness stamps onto the outgoing "goa.budget"
// message. Returns 0 (and records nothing) with provenance off, leaving
// the message span-free.
func (g *GOA) ProvenanceBroadcast(now time.Time, server string, watts float64) uint64 {
	if g.prov == nil {
		return 0
	}
	return uint64(g.prov.Emit(causal.Record{
		Parent:    g.lastProfileSpan,
		Time:      now,
		Kind:      causal.KindDecision,
		Component: "goa",
		Site:      "goa.budget",
		Subject:   server,
		Verdict:   "assign",
		Inputs:    []causal.Input{causal.In("budget_watts", watts)},
	}))
}
