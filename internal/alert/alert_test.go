package alert

import (
	"testing"
	"time"

	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// record builds a recording with one gauge series per name->samples entry,
// on a 1-minute step. Counter-typed names (ending in _total) are synthesized
// as counters whose per-interval rates equal the given samples.
func record(t *testing.T, step time.Duration, series map[string][]float64) *metrics.Recording {
	t.Helper()
	reg := metrics.NewRegistry()
	names := make([]string, 0, len(series))
	n := 0
	for name, samples := range series {
		names = append(names, name)
		if n == 0 {
			n = len(samples)
		} else if len(samples) != n {
			t.Fatalf("uneven sample lengths")
		}
	}
	rec := metrics.NewRecorder(reg, t0, step)
	totals := make(map[string]float64)
	for i := 0; i < n; i++ {
		for _, name := range names {
			v := series[name][i]
			if len(name) > 6 && name[len(name)-6:] == "_total" {
				// Counter: accumulate rate*stepSeconds so the recorded rate
				// equals the requested sample.
				totals[name] += v * step.Seconds()
				c := reg.Counter(name)
				c.Add(totals[name] - c.Value())
			} else {
				reg.Gauge(name).Set(v)
			}
		}
		rec.Tick(t0.Add(time.Duration(i+1) * step))
	}
	return rec.Recording()
}

func TestThresholdRuleEpisodes(t *testing.T) {
	rec := record(t, time.Minute, map[string][]float64{
		"rack_power_watts": {5000, 6500, 6600, 5000, 6700, 5000},
	})
	rules := []Rule{{
		Name: "over", Severity: Page,
		Metric: "rack_power_watts", Op: OpGT, Threshold: 6000,
		For: 2 * time.Minute,
	}}
	alerts := Eval(rec, rules, nil)
	// Intervals 1-2 form a 2-interval episode (meets For); interval 4 alone
	// does not.
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want 1 episode", alerts)
	}
	a := alerts[0]
	if a.Intervals != 2 || a.Peak != 6600 || a.Limit != 6000 {
		t.Errorf("episode = %+v", a)
	}
	if !a.From.Equal(t0.Add(time.Minute)) || !a.To.Equal(t0.Add(3*time.Minute)) {
		t.Errorf("episode window = %v..%v", a.From, a.To)
	}
	if a.Duration() != 2*time.Minute {
		t.Errorf("duration = %v", a.Duration())
	}
}

func TestMetricVsMetricRule(t *testing.T) {
	rec := record(t, time.Minute, map[string][]float64{
		"rack_power_watts": {5000, 6500, 6500, 4000},
		"rack_limit_watts": {6000, 6000, 7000, 6000},
	})
	rules := []Rule{{
		Name: "over-limit", Severity: Page,
		Metric: "rack_power_watts", Op: OpGT, ThresholdMetric: "rack_limit_watts",
	}}
	alerts := Eval(rec, rules, nil)
	// Only interval 1 is over its (time-varying) limit: interval 2's limit
	// rose to 7000.
	if len(alerts) != 1 || alerts[0].Intervals != 1 || alerts[0].Limit != 6000 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestRatioRule(t *testing.T) {
	rec := record(t, time.Minute, map[string][]float64{
		"rack_over_limit_ticks_total": {0, 2, 0},
		"rack_ticks_total":            {100, 100, 0},
	})
	rules := []Rule{{
		Name: "underprediction", Severity: Page,
		Metric: "rack_over_limit_ticks_total", Op: OpGT, Threshold: 0.01,
		DivideBy: "rack_ticks_total",
	}}
	alerts := Eval(rec, rules, nil)
	// Interval 1: 2/100 = 2% > 1%. Interval 2 has a zero divisor → false.
	if len(alerts) != 1 || alerts[0].Peak != 0.02 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestLabelSubsetAndPairing(t *testing.T) {
	reg := metrics.NewRegistry()
	rec := metrics.NewRecorder(reg, t0, time.Minute)
	for _, rack := range []string{"r0", "r1"} {
		reg.Gauge("rack_power_watts", metrics.L("rack", rack), metrics.L("system", "soc"))
		reg.Gauge("rack_limit_watts", metrics.L("rack", rack), metrics.L("system", "soc"))
	}
	set := func(name, rack string, v float64) {
		reg.Gauge(name, metrics.L("rack", rack), metrics.L("system", "soc")).Set(v)
	}
	set("rack_power_watts", "r0", 7000)
	set("rack_limit_watts", "r0", 6000)
	set("rack_power_watts", "r1", 7000)
	set("rack_limit_watts", "r1", 8000) // r1 is fine
	rec.Tick(t0.Add(time.Minute))
	r := rec.Recording()

	rules := []Rule{{
		Name: "over", Severity: Page,
		Metric: "rack_power_watts", Op: OpGT, ThresholdMetric: "rack_limit_watts",
	}}
	alerts := Eval(r, rules, nil)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want only r0", alerts)
	}
	if alerts[0].Series != "rack_power_watts{rack=r0,system=soc}" {
		t.Errorf("fired series = %s", alerts[0].Series)
	}

	// Label filter restricts to r1 → nothing fires.
	rules[0].Labels = map[string]string{"rack": "r1"}
	if got := Eval(r, rules, nil); len(got) != 0 {
		t.Errorf("label-filtered eval = %+v", got)
	}
}

func TestLessThanPeakIsMinimum(t *testing.T) {
	rec := record(t, time.Minute, map[string][]float64{
		"soa_budget_watts": {500, 90, 40, 80, 500},
	})
	rules := []Rule{{
		Name: "starved", Severity: Warn,
		Metric: "soa_budget_watts", Op: OpLT, Threshold: 100,
		For: 3 * time.Minute,
	}}
	alerts := Eval(rec, rules, nil)
	if len(alerts) != 1 || alerts[0].Peak != 40 {
		t.Fatalf("alerts = %+v, want one episode peaking (min) at 40", alerts)
	}
}

func TestEvalEmitsTraceEvents(t *testing.T) {
	rec := record(t, time.Minute, map[string][]float64{
		"rack_power_watts": {7000, 7000, 5000},
	})
	rules := []Rule{{
		Name: "over", Severity: Page,
		Metric: "rack_power_watts", Op: OpGT, Threshold: 6000,
	}}
	tr := obs.New()
	alerts := Eval(rec, rules, tr)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("trace events = %+v, want fire+resolve", evs)
	}
	fire, resolve := evs[0], evs[1]
	if fire.Component != obs.Alert || fire.Kind != "fire" || fire.Source != "over" {
		t.Errorf("fire event = %+v", fire)
	}
	if resolve.Kind != "resolve" || !resolve.Time.Equal(alerts[0].To) {
		t.Errorf("resolve event = %+v", resolve)
	}
}

// TestDefaultRulesFireOnPaperViolations feeds the default rule set a
// synthetic recording violating each guarantee and checks the expected
// rules (and only those) fire.
func TestDefaultRulesFireOnPaperViolations(t *testing.T) {
	rec := record(t, time.Minute, map[string][]float64{
		// Over limit for 3 intervals (fires over-limit), with a 4th interval
		// still above 95% of the limit (fires sustained-pressure).
		"rack_power_watts": {5000, 6500, 6500, 6500, 5900, 5000},
		"rack_limit_watts": {6000, 6000, 6000, 6000, 6000, 6000},
		// 5% of ticks over limit in interval 3 → underprediction fires.
		"rack_over_limit_ticks_total": {0, 0, 0, 5, 0, 0},
		"rack_ticks_total":            {100, 100, 100, 100, 100, 100},
		// One cap event burst.
		"rack_cap_events_total": {0, 0, 1, 0, 0, 0},
		// No invariant violations.
		"invariant_violations_total": {0, 0, 0, 0, 0, 0},
	})
	alerts := Eval(rec, DefaultRules(), nil)
	fired := make(map[string]int)
	for _, a := range alerts {
		fired[a.Rule]++
	}
	for _, want := range []string{
		"rack-power-over-limit", "rack-sustained-pressure",
		"rack-underprediction-rate", "rack-cap-burst",
	} {
		if fired[want] == 0 {
			t.Errorf("rule %s did not fire: %v", want, fired)
		}
	}
	if fired["invariant-violations"] != 0 {
		t.Errorf("invariant rule fired without violations: %v", fired)
	}
	// Deterministic ordering: rule declaration order.
	if len(alerts) > 0 && alerts[0].Rule != "rack-power-over-limit" {
		t.Errorf("alerts not in rule order: %+v", alerts)
	}
}

func TestFindRule(t *testing.T) {
	rules := DefaultRules()
	if r := FindRule(rules, "rack-cap-burst"); r == nil || r.Severity != Warn {
		t.Fatalf("FindRule = %+v", r)
	}
	if r := FindRule(rules, "nope"); r != nil {
		t.Fatalf("FindRule(nope) = %+v", r)
	}
}
