// Package alert is a declarative rules engine over recorded metric series.
// It turns SmartOClock's paper-level risk guarantees — budget violations
// bounded in duration, underprediction windows at ≈1%, cap events as rare
// emergencies — into threshold/duration rules that are evaluated against a
// metrics.Recording after (or during) a run, producing alert episodes and
// obs trace events on the "alert" component.
//
// Evaluation is pure and deterministic: rules scan sorted recorded series,
// episodes are maximal consecutive-true runs, and output ordering follows
// (rule declaration order, series identity), so alert output for a seed is
// byte-stable like every other artifact in the repo.
package alert

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"smartoclock/internal/causal"
	"smartoclock/internal/metrics"
	"smartoclock/internal/obs"
)

// Op is a comparison operator in a rule condition.
type Op string

// Comparison operators.
const (
	OpGT Op = ">"
	OpGE Op = ">="
	OpLT Op = "<"
	OpLE Op = "<="
)

func (o Op) holds(a, b float64) bool {
	switch o {
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	default:
		panic(fmt.Sprintf("alert: unknown operator %q", o))
	}
}

// Severity ranks an alert's urgency.
type Severity string

// Severities, in increasing urgency.
const (
	Warn Severity = "warn"
	Page Severity = "page"
)

// Rule is one declarative condition over a recorded metric. In its simplest
// form it compares each interval of Metric against the static Threshold:
//
//	Rule{Metric: "rack_power_watts", Op: OpGT, Threshold: 6000}
//
// Two optional twists cover the paper's guarantees:
//
//   - ThresholdMetric compares against another recorded series instead of a
//     constant (scaled by ThresholdScale, default 1). The two series are
//     matched pairwise by identical label sets, so a per-rack power series
//     is judged against the same rack's limit series.
//   - DivideBy divides Metric by another series first (again matched by
//     label set), turning two counters into a ratio — e.g. over-limit ticks
//     per total ticks for the underprediction rate. Intervals where the
//     divisor is zero evaluate to false.
//
// For is the minimum duration the condition must hold continuously before
// an episode fires; it rounds up to whole recording intervals (minimum 1).
type Rule struct {
	Name     string
	Severity Severity
	Help     string

	Metric string
	// Labels restricts the rule to series whose labels are a superset of
	// this map. Nil matches every series of the metric.
	Labels map[string]string

	Op        Op
	Threshold float64

	ThresholdMetric string
	ThresholdScale  float64

	DivideBy string

	For time.Duration
}

// Alert is one fired episode: a maximal run of intervals where the rule's
// condition held for at least the rule's For duration.
type Alert struct {
	Rule     string
	Severity Severity
	// Series is the canonical identity of the series that fired.
	Series string
	From   time.Time
	To     time.Time // end of the last firing interval
	// Intervals is the episode length in recording intervals.
	Intervals int
	// Peak is the most extreme observed value in the episode (max for
	// OpGT/OpGE rules, min for OpLT/OpLE).
	Peak float64
	// Limit is the threshold in force at the peak interval.
	Limit float64
}

// Duration returns the episode length in simulated time.
func (a *Alert) Duration() time.Duration { return a.To.Sub(a.From) }

// labelsMatch reports whether have is a superset of want.
func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// labelKey renders a label set canonically for pairwise series matching.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// seriesByLabels indexes a metric's series by canonical label set.
func seriesByLabels(rec *metrics.Recording, name string) map[string]*metrics.RecordedSeries {
	out := make(map[string]*metrics.RecordedSeries)
	for i := range rec.Series {
		s := &rec.Series[i]
		if s.Name == name {
			out[labelKey(s.Labels)] = s
		}
	}
	return out
}

// Eval evaluates rules over a recording, returning fired episodes ordered
// by (rule declaration order, series identity, time). When tracer is
// non-nil, each episode emits a "fire" event at its start and a "resolve"
// event at its end on the alert component, with the rule as Source, the
// series as Target, the peak as Value and the violated condition in Detail.
func Eval(rec *metrics.Recording, rules []Rule, tracer *obs.Tracer) []Alert {
	return EvalProv(rec, rules, tracer, nil)
}

// EvalProv is Eval with decision provenance: when prov is non-nil, every
// episode emits a "fire" record and a "resolve" record (parented to the
// fire) carrying the rule name as Policy, the peak value and the threshold
// in force as inputs. A nil prov makes EvalProv identical to Eval.
func EvalProv(rec *metrics.Recording, rules []Rule, tracer *obs.Tracer, prov *causal.Recorder) []Alert {
	if rec == nil || rec.Intervals() == 0 {
		return nil
	}
	var out []Alert
	for i := range rules {
		out = append(out, evalRule(rec, &rules[i])...)
	}
	if tracer != nil {
		emit(rec, out, tracer)
	}
	if prov.Enabled() {
		provEmit(out, prov)
	}
	return out
}

// provEmit records fire/resolve decisions for episodes in the same
// deterministic time order emit uses for trace events.
func provEmit(alerts []Alert, prov *causal.Recorder) {
	idx := make([]int, len(alerts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return alerts[idx[a]].From.Before(alerts[idx[b]].From)
	})
	for _, i := range idx {
		a := &alerts[i]
		fireSpan := prov.Emit(causal.Record{
			Time:      a.From,
			Kind:      causal.KindDecision,
			Component: "alert",
			Site:      "alert.fire",
			Subject:   a.Series,
			Policy:    a.Rule,
			Verdict:   "fire",
			Inputs: []causal.Input{
				causal.In("peak", a.Peak),
				causal.In("limit", a.Limit),
				causal.In("intervals", float64(a.Intervals)),
			},
			Detail: string(a.Severity),
		})
		prov.Emit(causal.Record{
			Time:      a.To,
			Parent:    fireSpan,
			Kind:      causal.KindDecision,
			Component: "alert",
			Site:      "alert.resolve",
			Subject:   a.Series,
			Policy:    a.Rule,
			Verdict:   "resolve",
			Inputs: []causal.Input{
				causal.In("peak", a.Peak),
				causal.In("limit", a.Limit),
			},
			Detail: string(a.Severity),
		})
	}
}

func evalRule(rec *metrics.Recording, r *Rule) []Alert {
	minIntervals := 1
	if r.For > 0 {
		minIntervals = int(math.Ceil(float64(r.For) / float64(rec.Step)))
		if minIntervals < 1 {
			minIntervals = 1
		}
	}
	scale := r.ThresholdScale
	if scale == 0 {
		scale = 1
	}
	var thresholds map[string]*metrics.RecordedSeries
	if r.ThresholdMetric != "" {
		thresholds = seriesByLabels(rec, r.ThresholdMetric)
	}
	var divisors map[string]*metrics.RecordedSeries
	if r.DivideBy != "" {
		divisors = seriesByLabels(rec, r.DivideBy)
	}

	var out []Alert
	for si := range rec.Series {
		s := &rec.Series[si]
		if s.Name != r.Metric || !labelsMatch(s.Labels, r.Labels) {
			continue
		}
		key := labelKey(s.Labels)
		var thr, div *metrics.RecordedSeries
		if thresholds != nil {
			if thr = thresholds[key]; thr == nil {
				continue // no matching limit series to judge against
			}
		}
		if divisors != nil {
			if div = divisors[key]; div == nil {
				continue
			}
		}

		n := len(s.Samples)
		run := 0
		var peak, limitAtPeak float64
		flush := func(end int) {
			if run >= minIntervals {
				from := rec.TimeAt(end - run)
				out = append(out, Alert{
					Rule: r.Name, Severity: r.Severity, Series: s.ID(),
					From: from, To: rec.TimeAt(end),
					Intervals: run, Peak: peak, Limit: limitAtPeak,
				})
			}
			run = 0
		}
		for i := 0; i < n; i++ {
			v := s.Samples[i]
			ok := true
			if div != nil {
				if div.Samples[i] == 0 {
					ok = false
				} else {
					v /= div.Samples[i]
				}
			}
			limit := r.Threshold
			if thr != nil {
				limit = thr.Samples[i] * scale
			}
			if ok {
				ok = r.Op.holds(v, limit)
			}
			if !ok {
				flush(i)
				continue
			}
			extremer := v > peak
			if r.Op == OpLT || r.Op == OpLE {
				extremer = v < peak
			}
			if run == 0 || extremer {
				peak, limitAtPeak = v, limit
			}
			run++
		}
		flush(n)
	}
	return out
}

// emit writes fire/resolve events for episodes in time order, which is how
// a live trace would have recorded them.
func emit(rec *metrics.Recording, alerts []Alert, tracer *obs.Tracer) {
	type edge struct {
		t    time.Time
		kind string
		a    *Alert
	}
	var edges []edge
	for i := range alerts {
		a := &alerts[i]
		edges = append(edges, edge{a.From, "fire", a}, edge{a.To, "resolve", a})
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].t.Before(edges[j].t) })
	for _, e := range edges {
		a := e.a
		tracer.Emit(obs.Event{
			Time: e.t, Component: obs.Alert, Kind: e.kind,
			Source: a.Rule, Target: a.Series, Value: a.Peak,
			Detail: fmt.Sprintf("%s: peak %s vs limit %s over %d intervals",
				a.Severity, trimFloat(a.Peak), trimFloat(a.Limit), a.Intervals),
		})
	}
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// DefaultRules mirrors the paper's risk guarantees over the series the
// experiments already record. The thresholds reference:
//
//   - §V-C: rack power must not exceed the provisioned limit; violations
//     are emergencies handled by capping, so sustained overshoot pages.
//   - Fig. 10: prediction underestimates budget in ≈1% of windows; a rack
//     spending more than 1% of ticks over its limit pages.
//   - §III/§IV-B: warnings are the avoid-throttling signal and cap events
//     the last-resort safety net; a burst of either warns, and a
//     persistently near-limit rack warns before it trips.
//   - Invariant violations mean the implementation broke its own safety
//     contract — always page.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "rack-power-over-limit", Severity: Page,
			Help:   "rack draw exceeded its provisioned limit for 2+ intervals",
			Metric: "rack_power_watts", Op: OpGT,
			ThresholdMetric: "rack_limit_watts",
			For:             2 * time.Minute,
		},
		{
			Name: "rack-sustained-pressure", Severity: Warn,
			Help:   "rack draw within 5% of its limit, capping likely imminent",
			Metric: "rack_power_watts", Op: OpGT,
			ThresholdMetric: "rack_limit_watts", ThresholdScale: 0.95,
			For: 4 * time.Minute,
		},
		{
			Name: "rack-underprediction-rate", Severity: Page,
			Help:   "fraction of ticks over the rack limit exceeded the paper's ~1% bound",
			Metric: "rack_over_limit_ticks_total", Op: OpGT, Threshold: 0.01,
			DivideBy: "rack_ticks_total",
		},
		{
			Name: "rack-warning-burst", Severity: Warn,
			Help:   "rack warnings were broadcast in this window — draw near the limit, sOAs asked to back off",
			Metric: "rack_warnings_total", Op: OpGT, Threshold: 0,
		},
		{
			Name: "rack-cap-burst", Severity: Warn,
			Help:   "emergency cap events occurred in this window",
			Metric: "rack_cap_events_total", Op: OpGT, Threshold: 0,
		},
		{
			Name: "invariant-violations", Severity: Page,
			Help:   "runtime invariant checker detected a safety violation",
			Metric: "invariant_violations_total", Op: OpGT, Threshold: 0,
		},
	}
}

// FindRule returns the named default rule's help text, or "".
func FindRule(rules []Rule, name string) *Rule {
	for i := range rules {
		if rules[i].Name == name {
			return &rules[i]
		}
	}
	return nil
}
