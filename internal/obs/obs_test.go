package obs

import (
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Component: SOA, Kind: "reject"}) // must not panic
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be empty")
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil tracer must write nothing")
	}
	if got := tr.CountByComponent(); len(got) != 0 {
		t.Fatal("nil tracer must count nothing")
	}
	tr.Append(New()) // no-op, must not panic
}

func TestEmitOrderPreserved(t *testing.T) {
	tr := New()
	for i, k := range []string{"a", "b", "c"} {
		tr.Emit(Event{Time: t0.Add(time.Duration(i) * time.Second), Component: Rack, Kind: k})
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Kind != "a" || evs[2].Kind != "c" {
		t.Fatalf("events out of order: %+v", evs)
	}
}

func TestFilteredTracer(t *testing.T) {
	tr := NewFiltered(Rack, Invariant)
	tr.Emit(Event{Component: Rack, Kind: "cap"})
	tr.Emit(Event{Component: SOA, Kind: "reject"}) // filtered out
	tr.Emit(Event{Component: Invariant, Kind: "violation"})
	if tr.Len() != 2 {
		t.Fatalf("filtered tracer recorded %d events, want 2", tr.Len())
	}
	counts := tr.CountByComponent()
	if counts[Rack] != 1 || counts[Invariant] != 1 || counts[SOA] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestParseComponents(t *testing.T) {
	got, err := ParseComponents(" soa, rack ,alert,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Component{SOA, Rack, Alert}
	if len(got) != len(want) {
		t.Fatalf("ParseComponents = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseComponents = %v, want %v", got, want)
		}
	}
	if _, err := ParseComponents("soa,bogus"); err == nil {
		t.Fatal("unknown component accepted")
	}
	if got, err := ParseComponents(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
}

func TestConcatShardOrder(t *testing.T) {
	a, b := New(), New()
	a.Emit(Event{Time: t0, Component: SOA, Kind: "from-a"})
	b.Emit(Event{Time: t0, Component: SOA, Kind: "from-b"})
	merged := Concat(a, nil, b)
	evs := merged.Events()
	if len(evs) != 2 || evs[0].Kind != "from-a" || evs[1].Kind != "from-b" {
		t.Fatalf("concat order wrong: %+v", evs)
	}
}

func TestBoundedTracerRing(t *testing.T) {
	tr := New().Bound(3)
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: t0.Add(time.Duration(i) * time.Second), Component: Rack, Kind: string(rune('a' + i))})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].Kind != "c" || evs[1].Kind != "d" || evs[2].Kind != "e" {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 || !strings.Contains(lines[0], `"kind":"c"`) {
		t.Fatalf("JSONL not in oldest-first order:\n%s", b.String())
	}
}

func TestBoundTrimsExistingOverflow(t *testing.T) {
	tr := New()
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Component: SOA, Kind: string(rune('a' + i))})
	}
	tr.Bound(2)
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("Len/Dropped = %d/%d, want 2/3", tr.Len(), tr.Dropped())
	}
	if evs := tr.Events(); evs[0].Kind != "d" || evs[1].Kind != "e" {
		t.Fatalf("trim kept wrong window: %+v", evs)
	}
	var nilTr *Tracer
	if nilTr.Bound(4) != nil || nilTr.Dropped() != 0 {
		t.Fatal("nil Bound must stay nil")
	}
}

func TestBoundedAppend(t *testing.T) {
	dst := New().Bound(2)
	src := New()
	for _, k := range []string{"x", "y", "z"} {
		src.Emit(Event{Component: GOA, Kind: k})
	}
	dst.Append(src)
	if dst.Len() != 2 || dst.Dropped() != 1 {
		t.Fatalf("Len/Dropped = %d/%d, want 2/1", dst.Len(), dst.Dropped())
	}
	if evs := dst.Events(); evs[0].Kind != "y" || evs[1].Kind != "z" {
		t.Fatalf("append kept wrong window: %+v", evs)
	}
}

func TestEventSpanFieldsOmittedWhenZero(t *testing.T) {
	tr := New()
	tr.Emit(Event{Time: t0, Component: SOA, Kind: "grant"})
	tr.Emit(Event{Time: t0, Component: SOA, Kind: "grant", Span: 7, Parent: 3})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if strings.Contains(lines[0], "span") || strings.Contains(lines[0], "parent") {
		t.Fatalf("zero span leaked into JSON: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"span":7`) || !strings.Contains(lines[1], `"parent":3`) {
		t.Fatalf("span fields missing: %s", lines[1])
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	mk := func() string {
		tr := New()
		tr.Emit(Event{Time: t0, Component: GOA, Kind: "budget", Source: "goa", Target: "srv-0", Value: 512.25})
		tr.Emit(Event{Time: t0.Add(time.Minute), Component: Chaos, Kind: "crash", Target: "soa-1", Detail: "plan"})
		var b strings.Builder
		if err := tr.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := mk()
	for i := 0; i < 3; i++ {
		if got := mk(); got != first {
			t.Fatalf("JSONL output varies across writes:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, `"component":"goa"`) || !strings.Contains(first, `"value":512.25`) {
		t.Fatalf("unexpected encoding:\n%s", first)
	}
	// Zero-valued optional fields stay omitted to keep traces compact.
	if strings.Contains(first, `"detail":""`) || strings.Contains(strings.Split(first, "\n")[1], `"value"`) {
		t.Fatalf("omitempty fields leaked:\n%s", first)
	}
	if lines := strings.Count(first, "\n"); lines != 2 {
		t.Fatalf("want one line per event, got %d lines", lines)
	}
}
