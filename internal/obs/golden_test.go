package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWriteJSONLGolden pins the exact JSONL bytes, in particular that HTML
// escaping is off: Detail strings routinely carry comparison expressions
// ("power > limit", "a & b") that must survive verbatim — > escapes
// would break grep-ability and any diff against externally produced traces.
func TestWriteJSONLGolden(t *testing.T) {
	tr := New()
	tr.Emit(Event{
		Time: t0, Component: Rack, Kind: "cap",
		Source: "rack-0", Value: 6500,
		Detail: "power > limit for 2 ticks",
	})
	tr.Emit(Event{
		Time: t0.Add(30 * time.Second), Component: Alert, Kind: "fire",
		Source: "rack-power-over-limit", Target: "rack_power_watts{rack=rack-0}",
		Value: 6500, Detail: "6500 > 6000 & sustained <2m>",
	})
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, esc := range []string{`\u003e`, `\u003c`, `\u0026`} {
		if strings.Contains(got, esc) {
			t.Fatalf("HTML escaping leaked %s into trace output:\n%s", esc, got)
		}
	}
	if !strings.Contains(got, "power > limit") {
		t.Fatalf("Detail did not round-trip verbatim:\n%s", got)
	}

	path := filepath.Join("testdata", "trace_escaping.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("trace bytes diverge from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
