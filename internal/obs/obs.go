// Package obs is the structured event tracer of the observability layer.
// Events are stamped with simulation time (the discrete-event engine's
// clock, never the wall clock) and grouped into per-component channels, so
// a trace of the same seed is byte-identical however many workers ran the
// experiment: each shard appends to its own Tracer in deterministic sim
// order and the shards are concatenated in shard-index order.
//
// A nil *Tracer is valid and discards everything, which keeps the
// instrumentation hot paths to a single pointer test when tracing is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Component names one event channel. The set mirrors the SmartOClock agent
// hierarchy plus the test harnesses around it.
type Component string

const (
	// SOA traces server overclocking agent decisions (grants, rejections,
	// exploration transitions, feedback backoffs, exhaustion signals).
	SOA Component = "soa"
	// GOA traces global agent budget broadcasts.
	GOA Component = "goa"
	// WI traces workload intelligence predictions and scaling actions.
	WI Component = "wi"
	// Rack traces power-capping actions (warning, cap, release).
	Rack Component = "rack"
	// Chaos traces injected faults (crashes, restarts, outages).
	Chaos Component = "chaos"
	// Invariant traces runtime invariant violations.
	Invariant Component = "invariant"
	// Alert traces alerting-rule transitions (fire, resolve).
	Alert Component = "alert"
)

// Components lists every known component in declaration order, for CLI
// help text and flag validation.
var Components = []Component{SOA, GOA, WI, Rack, Chaos, Invariant, Alert}

// ParseComponents parses a comma-separated component list (as passed to a
// -trace-components flag). Whitespace around names is trimmed and empty
// elements are skipped; an unknown name is an error naming the valid set.
func ParseComponents(s string) ([]Component, error) {
	known := make(map[Component]bool, len(Components))
	for _, c := range Components {
		known[c] = true
	}
	var out []Component
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c := Component(part)
		if !known[c] {
			return nil, fmt.Errorf("obs: unknown component %q (valid: %v)", part, Components)
		}
		out = append(out, c)
	}
	return out, nil
}

// Event is one structured trace record. Time is simulation time; Source is
// the emitting entity (server, rack, agent); Target is the acted-on entity
// when distinct (a VM, a crashed agent); Value carries the principal
// quantity (watts, cores, instances) and Detail any free-form remainder.
type Event struct {
	Time      time.Time `json:"t"`
	Component Component `json:"component"`
	Kind      string    `json:"kind"`
	Source    string    `json:"source,omitempty"`
	Target    string    `json:"target,omitempty"`
	Value     float64   `json:"value,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	// Span and Parent tie the event into the causal-provenance layer
	// (internal/causal) when provenance is enabled; both stay zero — and
	// omitted from JSON, keeping pre-provenance traces byte-identical —
	// otherwise.
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// Tracer accumulates events in emission order. Like the metrics registry it
// is single-goroutine: each parallel shard owns its own Tracer, merged
// afterwards with Append.
//
// A tracer is unbounded by default; Bound switches it to a ring of fixed
// capacity where appends beyond it overwrite the oldest events. Overwrites
// are counted and surfaced by Dropped — long-running harnesses export the
// count as the `trace_dropped_total` metric so a truncated trace is
// visible in telemetry rather than silently partial.
type Tracer struct {
	only    map[Component]bool // nil means trace every component
	events  []Event
	bound   int // 0 = unbounded; otherwise ring capacity
	start   int // oldest-event index once the bounded ring is full
	dropped uint64
}

// New returns a tracer recording every component.
func New() *Tracer { return &Tracer{} }

// NewFiltered returns a tracer recording only the given components.
func NewFiltered(components ...Component) *Tracer {
	only := make(map[Component]bool, len(components))
	for _, c := range components {
		only[c] = true
	}
	return &Tracer{only: only}
}

// Bound caps the tracer at capacity events, keeping the most recent ones.
// It returns the tracer for chaining (obs.New().Bound(n)). Bounding an
// already-overfull tracer keeps the newest capacity events and counts the
// rest as dropped. Safe on a nil tracer.
func (t *Tracer) Bound(capacity int) *Tracer {
	if t == nil || capacity <= 0 {
		return t
	}
	if excess := len(t.events) - capacity; excess > 0 {
		t.events = append(t.events[:0], t.events[excess:]...)
		t.dropped += uint64(excess)
	}
	t.bound = capacity
	t.start = 0
	return t
}

// Dropped returns how many events a bounded tracer overwrote; 0 on a nil
// or unbounded tracer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Emit records an event. Safe on a nil tracer (no-op), so instrumented
// components need no tracing-enabled flag of their own.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if t.only != nil && !t.only[ev.Component] {
		return
	}
	if t.bound > 0 && len(t.events) == t.bound {
		t.events[t.start] = ev
		t.start = (t.start + 1) % t.bound
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Len returns the number of recorded events; 0 on a nil tracer.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in emission order. The slice is the
// tracer's own for unbounded tracers (callers must not mutate it) and a
// fresh unwrapped copy for a bounded ring that has wrapped.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.bound == 0 || len(t.events) < t.bound || t.start == 0 {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.start:]...)
	out = append(out, t.events[:t.start]...)
	return out
}

// Append concatenates other's events onto t, preserving order. Merging
// shard tracers in shard-index order keeps the combined trace deterministic
// across worker counts. A bounded t keeps only the newest events, counting
// displaced ones as dropped.
func (t *Tracer) Append(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	evs := other.Events()
	if t.bound == 0 {
		t.events = append(t.events, evs...)
		return
	}
	for _, ev := range evs {
		if len(t.events) == t.bound {
			t.events[t.start] = ev
			t.start = (t.start + 1) % t.bound
			t.dropped++
			continue
		}
		t.events = append(t.events, ev)
	}
}

// Concat builds a single tracer from shard tracers in argument order. Nil
// entries are skipped.
func Concat(tracers ...*Tracer) *Tracer {
	out := New()
	// One right-sized allocation instead of O(log n) regrowths while
	// appending thousands of shard traces at fleet scale.
	total := 0
	for _, tr := range tracers {
		total += tr.Len()
	}
	out.events = make([]Event, 0, total)
	for _, tr := range tracers {
		out.Append(tr)
	}
	return out
}

// WriteJSONL writes one JSON object per event. Timestamps marshal as
// RFC 3339 with nanoseconds (simulation times are UTC), and struct field
// order is fixed, so output is byte-deterministic.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteEventsJSONL(w, t.Events())
}

// WriteEventsJSONL writes events as JSON lines. HTML escaping is disabled:
// Detail strings carry expressions like "power > limit" which must round-
// trip verbatim, not as > escapes.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("obs: encode event %d: %w", i, err)
		}
	}
	return nil
}

// CountByComponent tallies recorded events per component.
func (t *Tracer) CountByComponent() map[Component]int {
	out := make(map[Component]int)
	if t == nil {
		return out
	}
	for i := range t.events {
		out[t.events[i].Component]++
	}
	return out
}
