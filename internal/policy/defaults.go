package policy

import "time"

// This file holds the paper's heuristics, extracted verbatim from the sOA.
// Their arithmetic must stay byte-identical to the pre-policy behaviour:
// the fleet golden tables and the workers-1/2/8 determinism suite pin it.

// TemplateMax is the paper's admission forecast (§IV-B): the maximum of the
// server's own power template over the admission horizon, falling back to
// the live reading before the first template exists.
type TemplateMax struct{}

// Name implements Predictor.
func (*TemplateMax) Name() string { return "template-max" }

// Observe implements Predictor; the template is fitted elsewhere, so the
// per-slot samples carry no extra information for this strategy.
func (*TemplateMax) Observe(time.Time, float64) {}

// Baseline implements Predictor: the max of the template over
// [now, now+horizon] sampled at the profile step.
func (*TemplateMax) Baseline(now time.Time, horizon time.Duration, in PredictInput) float64 {
	if in.Template == nil {
		return in.CurrentWatts
	}
	maxP := 0.0
	step := in.Step
	if step <= 0 {
		step = 5 * time.Minute
	}
	for ts := now; !ts.After(now.Add(horizon)); ts = ts.Add(step) {
		if v := in.Template.At(ts); v > maxP {
			maxP = v
		}
	}
	return maxP
}

// At implements Predictor: the template value at the instant.
func (*TemplateMax) At(ts time.Time, in PredictInput) float64 {
	if in.Template == nil {
		return in.CurrentWatts
	}
	return in.Template.At(ts)
}

// Headroom is the paper's admission rule (§IV-B): grant iff the predicted
// baseline plus all modeled overclock deltas fits the budget.
type Headroom struct{}

// Name implements Admission.
func (Headroom) Name() string { return "headroom" }

// Admit implements Admission.
func (Headroom) Admit(in AdmitInput) bool {
	return in.Total() <= in.BudgetWatts
}

// Exponential is the paper's exploration heuristic (§IV-D): a fixed
// conditional step, one step shed per warning, everything shed on a cap,
// and an exponential back-off that doubles per setback up to a maximum and
// resets once an explored budget is confirmed safe.
type Exponential struct {
	step    float64
	initial time.Duration
	max     time.Duration
	cur     time.Duration
}

// NewExponential builds the paper's exploration policy from the sOA knobs.
func NewExponential(p Params) *Exponential {
	return &Exponential{
		step:    p.StepWatts,
		initial: p.InitialBackoff,
		max:     p.MaxBackoff,
		cur:     p.InitialBackoff,
	}
}

// Name implements Exploration.
func (*Exponential) Name() string { return "exponential" }

// Step implements Exploration: the fixed configured increment.
func (e *Exponential) Step(time.Time) float64 { return e.step }

// Setback implements Exploration: shed one step on a warning, everything on
// a cap; wait the current back-off and double it for next time.
func (e *Exponential) Setback(_ time.Time, cap bool, extraWatts float64) (float64, time.Duration) {
	keep := 0.0
	if !cap {
		keep = extraWatts - e.step
		if keep < 0 {
			keep = 0
		}
	}
	wait := e.cur
	e.cur *= 2
	if e.cur > e.max {
		e.cur = e.max
	}
	return keep, wait
}

// Confirmed implements Exploration: a budget proven safe resets the
// back-off to its initial value.
func (e *Exponential) Confirmed(time.Time) { e.cur = e.initial }

// Snapshot implements Exploration.
func (e *Exponential) Snapshot() ExplorationState {
	return ExplorationState{Backoff: e.cur}
}

// Restore implements Exploration.
func (e *Exponential) Restore(st ExplorationState) {
	if st.Backoff > 0 {
		e.cur = st.Backoff
	}
}
