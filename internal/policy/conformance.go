package policy

import (
	"math/rand"
	"time"
)

// TB is the minimal failure-reporting surface the conformance suite needs.
// *testing.T satisfies it; negative tests substitute a recorder to prove the
// suite rejects an unsafe policy.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// conformParams are the fixed knobs every law is checked under.
func conformParams() Params {
	return Params{
		StepWatts:      10,
		InitialBackoff: time.Minute,
		MaxBackoff:     30 * time.Minute,
	}
}

// Conformance runs the shared policy law suite against a factory. Every
// policy set that the zoo matrix certifies must pass it:
//
//  1. determinism — two instances fed the same input script make the same
//     decisions (per-seed reproducibility is what makes the scenario zoo's
//     byte-determinism contract extendable to any policy);
//  2. budget respect — admission never grants a request whose modeled total
//     exceeds the budget;
//  3. monotone back-off — consecutive setbacks return non-decreasing,
//     bounded back-offs, surplus retention stays within [0, extra] with a
//     cap forfeiting everything, and a confirmation resets the ladder;
//  4. snapshot round-trip — Restore(Snapshot()) reproduces subsequent
//     behaviour, the contract warm restarts rely on.
//
// Only Errorf is used to report failures, so callers may pass a recorder.
func Conformance(t TB, f Factory) {
	t.Helper()
	for seed := int64(1); seed <= 3; seed++ {
		conformDeterminism(t, f, seed)
		conformBudgetRespect(t, f, seed)
	}
	conformMonotoneBackoff(t, f)
	conformSnapshotRoundTrip(t, f)
}

// conformDeterminism replays one pseudo-random script of observations and
// decisions against two fresh instances and demands identical answers.
func conformDeterminism(t TB, f Factory, seed int64) {
	t.Helper()
	a, b := f.New(conformParams()), f.New(conformParams())
	rng := rand.New(rand.NewSource(seed))
	now := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 400; i++ {
		now = now.Add(time.Duration(1+rng.Intn(120)) * time.Second)
		switch rng.Intn(6) {
		case 0:
			w := 150 + 200*rng.Float64()
			a.Predictor.Observe(now, w)
			b.Predictor.Observe(now, w)
		case 1:
			in := PredictInput{Step: 5 * time.Minute, CurrentWatts: 150 + 200*rng.Float64()}
			h := time.Duration(1+rng.Intn(60)) * time.Minute
			if ga, gb := a.Predictor.Baseline(now, h, in), b.Predictor.Baseline(now, h, in); ga != gb {
				t.Errorf("%s: Predictor.Baseline nondeterministic at op %d (seed %d): %v vs %v", f.Name, i, seed, ga, gb)
				return
			}
		case 2:
			in := PredictInput{Step: 5 * time.Minute, CurrentWatts: 150 + 200*rng.Float64()}
			if ga, gb := a.Predictor.At(now, in), b.Predictor.At(now, in); ga != gb {
				t.Errorf("%s: Predictor.At nondeterministic at op %d (seed %d): %v vs %v", f.Name, i, seed, ga, gb)
				return
			}
		case 3:
			in := AdmitInput{
				Now:               now,
				PredictedWatts:    150 + 200*rng.Float64(),
				ActiveDeltaWatts:  40 * rng.Float64(),
				RequestDeltaWatts: 40 * rng.Float64(),
				BudgetWatts:       200 + 200*rng.Float64(),
				RequestCores:      1 + rng.Intn(32),
			}
			if ga, gb := a.Admission.Admit(in), b.Admission.Admit(in); ga != gb {
				t.Errorf("%s: Admission.Admit nondeterministic at op %d (seed %d): %v vs %v", f.Name, i, seed, ga, gb)
				return
			}
		case 4:
			if ga, gb := a.Exploration.Step(now), b.Exploration.Step(now); ga != gb {
				t.Errorf("%s: Exploration.Step nondeterministic at op %d (seed %d): %v vs %v", f.Name, i, seed, ga, gb)
				return
			}
		case 5:
			if rng.Intn(4) == 0 {
				a.Exploration.Confirmed(now)
				b.Exploration.Confirmed(now)
				continue
			}
			cap := rng.Intn(3) == 0
			extra := 30 * rng.Float64()
			ka, wa := a.Exploration.Setback(now, cap, extra)
			kb, wb := b.Exploration.Setback(now, cap, extra)
			if ka != kb || wa != wb {
				t.Errorf("%s: Exploration.Setback nondeterministic at op %d (seed %d): (%v,%v) vs (%v,%v)",
					f.Name, i, seed, ka, wa, kb, wb)
				return
			}
		}
	}
}

// conformBudgetRespect sweeps random admission decisions, including many
// whose modeled total exceeds the budget, and demands that none of the
// latter are granted.
func conformBudgetRespect(t TB, f Factory, seed int64) {
	t.Helper()
	set := f.New(conformParams())
	rng := rand.New(rand.NewSource(seed))
	now := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	granted, over := 0, 0
	for i := 0; i < 1000; i++ {
		now = now.Add(time.Minute)
		in := AdmitInput{
			Now:               now,
			PredictedWatts:    100 + 300*rng.Float64(),
			ActiveDeltaWatts:  60 * rng.Float64(),
			RequestDeltaWatts: 60 * rng.Float64(),
			BudgetWatts:       150 + 300*rng.Float64(),
			RequestCores:      1 + rng.Intn(32),
		}
		if in.Total() > in.BudgetWatts {
			over++
		}
		if set.Admission.Admit(in) {
			granted++
			if in.Total() > in.BudgetWatts {
				t.Errorf("%s: admission %q granted %.1f W against a %.1f W budget (seed %d, op %d)",
					f.Name, set.Admission.Name(), in.Total(), in.BudgetWatts, seed, i)
				return
			}
		}
	}
	if over == 0 || granted == 0 {
		t.Errorf("%s: budget-respect sweep vacuous (over=%d granted=%d); widen the input ranges", f.Name, over, granted)
	}
}

// conformMonotoneBackoff walks one setback ladder and checks the retreat
// contract: positive bump sizes, surplus retention within [0, extra] with a
// cap forfeiting all of it, non-decreasing back-offs bounded by MaxBackoff,
// and a confirmation resetting the ladder to its starting rung.
func conformMonotoneBackoff(t TB, f Factory) {
	t.Helper()
	p := conformParams()
	set := f.New(p)
	now := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	if s := set.Exploration.Step(now); s <= 0 {
		t.Errorf("%s: exploration step %v W is not positive", f.Name, s)
	}
	var first, prev time.Duration
	for i := 0; i < 12; i++ {
		cap := i%3 == 2
		extra := 25.0
		keep, wait := set.Exploration.Setback(now, cap, extra)
		if keep < 0 || keep > extra {
			t.Errorf("%s: setback %d retained %.1f W of a %.1f W surplus", f.Name, i, keep, extra)
		}
		if cap && keep != 0 {
			t.Errorf("%s: setback %d kept %.1f W through a capping event", f.Name, i, keep)
		}
		if wait <= 0 || wait > p.MaxBackoff {
			t.Errorf("%s: setback %d back-off %v outside (0, %v]", f.Name, i, wait, p.MaxBackoff)
		}
		if i == 0 {
			first = wait
		} else if wait < prev {
			t.Errorf("%s: back-off shrank without a confirmation: %v after %v (setback %d)", f.Name, wait, prev, i)
		}
		prev = wait
		now = now.Add(wait)
	}
	set.Exploration.Confirmed(now)
	if _, wait := set.Exploration.Setback(now, false, 25); wait > first {
		t.Errorf("%s: confirmation did not reset the ladder: post-confirm back-off %v > initial %v", f.Name, wait, first)
	}
}

// conformSnapshotRoundTrip checks that Restore(Snapshot()) transplants the
// exploration state: the restored instance retreats exactly like the
// original would have.
func conformSnapshotRoundTrip(t TB, f Factory) {
	t.Helper()
	set := f.New(conformParams())
	now := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		_, wait := set.Exploration.Setback(now, i%2 == 1, 20)
		now = now.Add(wait)
	}
	st := set.Exploration.Snapshot()
	clone := f.New(conformParams())
	clone.Exploration.Restore(st)
	for i := 0; i < 4; i++ {
		cap := i%2 == 0
		ka, wa := set.Exploration.Setback(now, cap, 15)
		kb, wb := clone.Exploration.Setback(now, cap, 15)
		if ka != kb || wa != wb {
			t.Errorf("%s: restored exploration diverges at setback %d: (%v,%v) vs (%v,%v)", f.Name, i, ka, wa, kb, wb)
			return
		}
		sa, sb := set.Exploration.Step(now), clone.Exploration.Step(now)
		if sa != sb {
			t.Errorf("%s: restored exploration step diverges at %d: %v vs %v", f.Name, i, sa, sb)
			return
		}
		now = now.Add(wa)
	}
}
