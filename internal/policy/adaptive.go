package policy

import (
	"sort"
	"time"
)

// This file holds the adaptive alternatives to the paper heuristics: a
// quantile-tracking predictor that widens the baseline when recent draw runs
// hotter than the template, and a bandit-style AIMD exploration that sizes
// its bumps from the observed success/setback history. Both are fully
// deterministic — their state is a pure function of the observation and
// setback sequence — which the conformance suite verifies.

// QuantileTracker predicts the baseline as the maximum of the template
// forecast and a high quantile of recently observed draw. The template alone
// is blind to regime shifts inside the current week (outlier-day storms,
// flash crowds); the rolling quantile pulls the forecast up within a few
// slots of the shift, trading admission headroom for safety.
type QuantileTracker struct {
	q      float64
	window int
	obs    []float64 // ring buffer, insertion order
	next   int
	full   bool
}

// NewQuantileTracker returns a tracker of the q-quantile (0 < q ≤ 1) over
// the last window observations.
func NewQuantileTracker(q float64, window int) *QuantileTracker {
	if q <= 0 || q > 1 {
		q = 0.98
	}
	if window <= 0 {
		window = 64
	}
	return &QuantileTracker{q: q, window: window, obs: make([]float64, 0, window)}
}

// Name implements Predictor.
func (t *QuantileTracker) Name() string { return "quantile" }

// Observe implements Predictor: push one sample into the ring.
func (t *QuantileTracker) Observe(_ time.Time, watts float64) {
	if len(t.obs) < t.window {
		t.obs = append(t.obs, watts)
		return
	}
	t.obs[t.next] = watts
	t.next = (t.next + 1) % t.window
	t.full = true
}

// quantile returns the tracked quantile of the ring, or 0 when empty.
func (t *QuantileTracker) quantile() float64 {
	if len(t.obs) == 0 {
		return 0
	}
	sorted := make([]float64, len(t.obs))
	copy(sorted, t.obs)
	sort.Float64s(sorted)
	idx := int(t.q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Baseline implements Predictor: max(template forecast, observed quantile).
func (t *QuantileTracker) Baseline(now time.Time, horizon time.Duration, in PredictInput) float64 {
	base := (&TemplateMax{}).Baseline(now, horizon, in)
	if q := t.quantile(); q > base {
		return q
	}
	return base
}

// At implements Predictor: max(template instant, observed quantile).
func (t *QuantileTracker) At(ts time.Time, in PredictInput) float64 {
	base := (&TemplateMax{}).At(ts, in)
	if q := t.quantile(); q > base {
		return q
	}
	return base
}

// AIMD is a bandit-style exploration policy: additive-increase on confirmed
// successes, multiplicative-decrease on setbacks. Unlike the paper's fixed
// step it grows its bump size while the rack keeps saying yes (up to 2× the
// configured step) and halves both the bump and the retained surplus when
// the rack pushes back, converging on the largest sustainable overshoot.
// The back-off doubles across consecutive setbacks exactly like the default
// policy, so the conformance monotonicity contract holds.
type AIMD struct {
	base    float64 // configured step, the additive-increase unit
	step    float64 // current bump size
	initial time.Duration
	max     time.Duration
	cur     time.Duration
	succ    int
	setb    int
}

// NewAIMD builds the adaptive exploration policy from the sOA knobs.
func NewAIMD(p Params) *AIMD {
	return &AIMD{
		base:    p.StepWatts,
		step:    p.StepWatts,
		initial: p.InitialBackoff,
		max:     p.MaxBackoff,
		cur:     p.InitialBackoff,
	}
}

// Name implements Exploration.
func (*AIMD) Name() string { return "aimd" }

// Step implements Exploration: the current adaptive bump size.
func (a *AIMD) Step(time.Time) float64 { return a.step }

// Setback implements Exploration: halve the bump size (floored at half the
// configured step), keep half the surplus on a warning and none on a cap,
// and double the back-off like the default policy.
func (a *AIMD) Setback(_ time.Time, cap bool, extraWatts float64) (float64, time.Duration) {
	a.setb++
	a.succ = 0
	a.step /= 2
	if a.step < a.base/2 {
		a.step = a.base / 2
	}
	keep := 0.0
	if !cap {
		keep = extraWatts / 2
		if keep < 0 {
			keep = 0
		}
	}
	wait := a.cur
	a.cur *= 2
	if a.cur > a.max {
		a.cur = a.max
	}
	return keep, wait
}

// Confirmed implements Exploration: additive increase of the bump size
// (capped at 2× the configured step) and reset of the back-off.
func (a *AIMD) Confirmed(time.Time) {
	a.succ++
	a.setb = 0
	a.step += a.base / 4
	if a.step > 2*a.base {
		a.step = 2 * a.base
	}
	a.cur = a.initial
}

// Snapshot implements Exploration.
func (a *AIMD) Snapshot() ExplorationState {
	return ExplorationState{
		Backoff:   a.cur,
		StepWatts: a.step,
		Successes: a.succ,
		Setbacks:  a.setb,
	}
}

// Restore implements Exploration.
func (a *AIMD) Restore(st ExplorationState) {
	if st.Backoff > 0 {
		a.cur = st.Backoff
	}
	if st.StepWatts > 0 {
		a.step = st.StepWatts
	}
	a.succ = st.Successes
	a.setb = st.Setbacks
}
