// Package policy is the pluggable decision layer of the Server Overclocking
// Agent. SmartOClock's sOA makes three kinds of risk decisions — predicting
// its own baseline power, admitting overclock requests against the budget,
// and exploring beyond a stale assignment — and the paper evaluates one
// fixed heuristic for each (§IV-B, §IV-D). Risk-aware admission work (e.g.
// learned vCPU-oversubscription policies) shows these choices should be
// swappable and adaptive, so this package carves each decision point behind
// a small interface:
//
//   - Predictor forecasts the server's non-overclocked baseline draw;
//   - Admission decides whether a modeled request fits the budget;
//   - Exploration sizes conditional budget bumps and the retreat after
//     rack warnings and capping events.
//
// The paper's heuristics are the "default" Set (byte-identical to the
// pre-refactor behaviour); the "aimd" Set is an adaptive alternative
// (quantile-tracking predictor, bandit-style exploration). Every
// implementation must be deterministic — two instances fed the same inputs
// must make the same decisions — and must pass the shared conformance suite
// in conformance.go; the scenario zoo then stress-certifies each Set
// against adversarial workload regimes with the invariant checker watching.
//
// Implementations hold per-agent state (quantile windows, back-off
// position), so agents must never share instances: configuration carries a
// Factory, and each agent builds its own Set.
package policy

import (
	"fmt"
	"time"

	"smartoclock/internal/timeseries"
)

// PredictInput is the evidence a Predictor may consult when forecasting.
// The template and step come from the sOA's own profile recording; the
// current draw is the live (sensor) reading.
type PredictInput struct {
	// Template is the server's fitted power week-template; nil before the
	// first fit.
	Template *timeseries.WeekTemplate
	// Step is the template slot width (the sOA's profile recording step).
	Step time.Duration
	// CurrentWatts is the instantaneous measured draw.
	CurrentWatts float64
}

// Predictor forecasts the server's non-overclocked baseline power for
// admission and exhaustion checks.
type Predictor interface {
	// Name identifies the strategy in reports and audits.
	Name() string
	// Observe feeds one measured power sample (the sOA calls it once per
	// closed profile slot). Strategies that predict purely from the
	// template may ignore it.
	Observe(now time.Time, watts float64)
	// Baseline predicts the peak baseline draw over [now, now+horizon] —
	// the admission-side forecast.
	Baseline(now time.Time, horizon time.Duration, in PredictInput) float64
	// At predicts the baseline draw at the single instant ts — the
	// exhaustion-side forecast.
	At(ts time.Time, in PredictInput) float64
}

// AdmitInput is one power-side admission decision, fully modeled: the
// predicted baseline over the request horizon, the worst-case watts of the
// sessions already running, the watts the new request would add, and the
// budget it all has to fit.
type AdmitInput struct {
	Now               time.Time
	PredictedWatts    float64
	ActiveDeltaWatts  float64
	RequestDeltaWatts float64
	BudgetWatts       float64
	// RequestCores is the request size, for policies that scale risk
	// appetite with blast radius.
	RequestCores int
}

// Total returns the modeled worst-case draw if the request were granted.
func (in AdmitInput) Total() float64 {
	return in.PredictedWatts + in.ActiveDeltaWatts + in.RequestDeltaWatts
}

// Admission decides whether a modeled overclock request is granted.
// Safe policies must never admit a request whose Total exceeds the budget
// (the conformance suite enforces this); the canary policy in canary.go
// deliberately violates it to prove the invariant checker is awake.
type Admission interface {
	Name() string
	Admit(in AdmitInput) bool
}

// ExplorationState is the serializable state of an Exploration policy, for
// durable checkpoints. Policies use the subset of fields they need.
type ExplorationState struct {
	// Backoff is the wait the next setback would impose.
	Backoff time.Duration `json:"backoff"`
	// StepWatts is the current bump size (adaptive policies scale it).
	StepWatts float64 `json:"step_watts,omitempty"`
	// Successes and Setbacks are streak counters for adaptive policies.
	Successes int `json:"successes,omitempty"`
	Setbacks  int `json:"setbacks,omitempty"`
}

// Exploration governs how far beyond the assigned budget the sOA pushes and
// how it retreats when the rack pushes back (§IV-D). The sOA owns the
// explore/exploit mode machine and its timers; the policy owns the numbers:
// bump size, surplus retained after a setback, and the back-off before the
// next attempt.
type Exploration interface {
	Name() string
	// Step returns the watts to add for the next exploration bump.
	Step(now time.Time) float64
	// Setback is invoked on a rack warning (cap=false) or a capping event
	// (cap=true) with the current exploration surplus. It returns the
	// surplus to retain (0 ≤ keep ≤ extraWatts; a cap must return 0) and
	// how long to hold off before re-exploring. Consecutive setbacks must
	// return non-decreasing back-offs (monotone back-off on rejection).
	Setback(now time.Time, cap bool, extraWatts float64) (keepWatts float64, backoff time.Duration)
	// Confirmed is invoked when an explored budget proves safe: every
	// session reached target without a warning.
	Confirmed(now time.Time)
	// Snapshot and Restore serialize the policy's adaptive state for
	// durable checkpoints; Restore with a zero state is a no-op.
	Snapshot() ExplorationState
	Restore(st ExplorationState)
}

// Set bundles one instance of each policy for a single agent. Instances are
// stateful and must not be shared across agents.
type Set struct {
	Predictor   Predictor
	Admission   Admission
	Exploration Exploration
}

// Params are the sOA-side knobs a Factory inherits when building a Set:
// the paper's exploration constants, which default and adaptive policies
// interpret in their own ways.
type Params struct {
	// StepWatts is the configured conditional budget increment.
	StepWatts float64
	// InitialBackoff and MaxBackoff bound the post-setback hold-off.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
}

// Factory builds fresh, unshared policy instances for one agent. The zero
// Factory (New == nil) means "use the paper defaults".
type Factory struct {
	// Name identifies the set in CLIs, reports and the zoo matrix.
	Name string
	// Desc is a one-line description for catalogs.
	Desc string
	// New returns a freshly constructed Set.
	New func(p Params) Set
}

// Default returns the paper-heuristic factory: template-max prediction,
// headroom admission, fixed-step exponential-back-off exploration. It is
// byte-identical to the hard-coded pre-policy behaviour.
func Default() Factory {
	return Factory{
		Name: "default",
		Desc: "paper heuristics: template-max predictor, headroom admission, exponential back-off",
		New: func(p Params) Set {
			return Set{
				Predictor:   &TemplateMax{},
				Admission:   Headroom{},
				Exploration: NewExponential(p),
			}
		},
	}
}

// Adaptive returns the adaptive factory: a quantile-tracking predictor that
// widens the baseline when recent draw runs hot, and a bandit-style AIMD
// exploration whose step size and back-off adapt to the observed
// success/setback history.
func Adaptive() Factory {
	return Factory{
		Name: "aimd",
		Desc: "adaptive: quantile-tracking predictor, headroom admission, bandit-style AIMD exploration",
		New: func(p Params) Set {
			return Set{
				Predictor:   NewQuantileTracker(0.98, 64),
				Admission:   Headroom{},
				Exploration: NewAIMD(p),
			}
		},
	}
}

// Factories lists the safe, certified policy sets in catalog order — the
// sets the zoo matrix runs by default. The canary set is deliberately
// excluded: it exists to prove the invariant checker detects an unsafe
// policy, not to be run as one.
func Factories() []Factory {
	return []Factory{Default(), Adaptive()}
}

// Lookup resolves a factory by name. The canary set is addressable by name
// so negative tests and the CLI can request it explicitly.
func Lookup(name string) (Factory, error) {
	for _, f := range Factories() {
		if f.Name == name {
			return f, nil
		}
	}
	if f := Canary(); f.Name == name {
		return f, nil
	}
	names := make([]string, 0, len(Factories())+1)
	for _, f := range Factories() {
		names = append(names, f.Name)
	}
	names = append(names, Canary().Name)
	return Factory{}, fmt.Errorf("policy: unknown set %q (valid: %v)", name, names)
}
