package policy

// OverGrant is an intentionally unsafe admission policy: it grants every
// request regardless of budget. It exists for exactly one purpose — proving
// that the invariant checker reports violations when a policy misbehaves. A
// checker that stays green under OverGrant is broken, not lucky. Never ship
// it in Factories().
type OverGrant struct{}

// Name implements Admission.
func (OverGrant) Name() string { return "over-grant" }

// Admit implements Admission: always yes, even beyond the budget.
func (OverGrant) Admit(AdmitInput) bool { return true }

// Canary returns the deliberately unsafe factory: paper prediction and
// exploration, but an admission policy that over-grants. The zoo's negative
// test runs it and asserts the AdmissionWithinBudget invariant fires.
func Canary() Factory {
	return Factory{
		Name: "canary",
		Desc: "UNSAFE: over-granting admission, for invariant-checker negative tests only",
		New: func(p Params) Set {
			return Set{
				Predictor:   &TemplateMax{},
				Admission:   OverGrant{},
				Exploration: NewExponential(p),
			}
		},
	}
}
