package policy

import "testing"

// TestPolicyConformance runs the shared law suite against every certified
// factory — the same sets the zoo matrix runs by default.
func TestPolicyConformance(t *testing.T) {
	for _, f := range Factories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			Conformance(t, f)
		})
	}
}

// recorderTB counts conformance failures instead of failing the test, so a
// negative test can assert the suite has teeth.
type recorderTB struct {
	failures []string
}

func (r *recorderTB) Helper() {}

func (r *recorderTB) Errorf(format string, args ...any) {
	r.failures = append(r.failures, format)
}

// TestCanaryFailsConformance proves the suite is not vacuous: the
// deliberately unsafe over-granting canary must break the budget law.
func TestCanaryFailsConformance(t *testing.T) {
	rec := &recorderTB{}
	Conformance(rec, Canary())
	if len(rec.failures) == 0 {
		t.Fatal("canary policy passed the conformance suite; the budget law is toothless")
	}
}

// TestConformanceUsesRecorder pins the TB seam: *testing.T satisfies the
// interface (compile-time check via TestPolicyConformance above) and a
// recorder sees exactly the failures Errorf reports.
func TestConformanceUsesRecorder(t *testing.T) {
	rec := &recorderTB{}
	conformBudgetRespect(rec, Canary(), 1)
	if len(rec.failures) != 1 {
		t.Fatalf("budget law reported %d failures for the canary, want exactly 1 (fail-fast)", len(rec.failures))
	}
}
