// Wearaware demonstrates the §VI hardware-support extensions working
// together: per-core frequency variability ("preferred cores"), online
// wear-out counters gating overclocking, and automatic migration of a
// session off worn cores.
//
//	go run ./examples/wearaware
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	hw := machine.DefaultConfig()
	hw.Cores = 16

	server := cluster.NewServer("edge-0", hw, 0)
	// Silicon variability: not every core reaches 4.0 GHz. The machine
	// exposes per-core maxima the way §VI's ACPI CPPC preferred-cores
	// engagement would.
	server.Machine().RandomizeCoreMaxOC(rand.New(rand.NewSource(7)), 3600)
	fastest := server.Machine().FastestCores(4)
	fmt.Print("per-core max overclock (MHz):")
	for c := 0; c < server.NumCores(); c++ {
		fmt.Printf(" %d", server.Machine().CoreMaxOC(c))
	}
	fmt.Printf("\npreferred (fastest) cores: %v\n\n", fastest)

	for c := 0; c < server.NumCores(); c++ {
		server.SetCoreUtil(c, 0.95) // hot workload: wear accrues fast
	}

	// Generous time budget so the ONLINE wear counters are the binding
	// constraint (§VI: upgrade from the conservative offline model).
	budgets := lifetime.NewCoreBudgets(lifetime.BudgetConfig{
		Epoch: 24 * time.Hour, Fraction: 0.9,
	}, hw.Cores, start)
	gate := lifetime.OnlineWearGate{Margin: 0.10, MinObservation: 20 * time.Minute}
	cfg := core.DefaultSOAConfig()
	cfg.WearGate = func(c int) bool { return gate.Allow(server.CoreWear(c)) }
	soa := core.NewSOA(cfg, server, budgets, 10000, start)
	soa.OnReject = func(vm string, reason core.RejectReason) {
		fmt.Printf("  [WI] %s rejected/stopped: %s\n", vm, reason)
	}

	// Overclock the four preferred cores.
	d := soa.Request(start, core.Request{
		VM: "hot-path", Cores: 4, TargetMHz: hw.MaxOCMHz,
		Priority: core.PriorityMetric, PreferredCores: fastest,
	})
	if !d.Granted {
		log.Fatalf("grant failed: %+v", d)
	}
	fmt.Printf("session on cores %v at %d MHz (per-core ceilings apply)\n",
		d.Cores, soa.Sessions()["hot-path"].CurrentMHz())
	for _, c := range d.Cores {
		fmt.Printf("  core %2d effective %d MHz\n", c, server.EffectiveFreq(c))
	}

	// Run at full tilt: the preferred cores age ~5x faster than the
	// envelope; the gate closes and the sOA migrates, then stops.
	now := start
	lastCores := fmt.Sprint(d.Cores)
	for i := 0; i < 240 && len(soa.Sessions()) > 0; i++ {
		now = now.Add(time.Minute)
		server.Advance(time.Minute)
		soa.Tick(now)
		if s, ok := soa.Sessions()["hot-path"]; ok {
			cur := fmt.Sprint(s.Cores)
			if cur != lastCores {
				fmt.Printf("%s  wear gate closed -> session migrated to cores %v\n",
					now.Format("15:04"), s.Cores)
				lastCores = cur
			}
		}
	}
	fmt.Printf("\nafter %s: sessions=%d\n", now.Sub(start), len(soa.Sessions()))
	for _, c := range fastest {
		w := server.CoreWear(c)
		fmt.Printf("  core %2d aged %5.1f min over %5.1f min elapsed (gate open: %v)\n",
			c, w.Aged().Minutes(), w.Elapsed().Minutes(), gate.Allow(w))
	}
}
