// Distributed: the Global Overclocking Agent and two Server Overclocking
// Agents running as separate TCP endpoints exchanging real JSON messages —
// profile reports up, heterogeneous budget assignments down, overclocking
// requests and decisions across the wire.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"smartoclock/internal/agent"
	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

// profileReport is the sOA → gOA message body.
type profileReport struct {
	Server     string  `json:"server"`
	PowerWatts float64 `json:"power_watts"`
	OCCores    float64 `json:"oc_cores"`
	CoreCost   float64 `json:"core_cost"`
}

// budgetAssignment is the gOA → sOA message body.
type budgetAssignment struct {
	Server string  `json:"server"`
	Watts  float64 `json:"watts"`
}

// ocRequest and ocDecision cross the wire between a workload's WI agent
// and an sOA node.
type ocRequest struct {
	VM    string `json:"vm"`
	Cores int    `json:"cores"`
	// ReplyAddr tells the sOA node where to dial the decision back to.
	ReplyAddr string `json:"reply_addr"`
}

type ocDecision struct {
	VM      string `json:"vm"`
	Granted bool   `json:"granted"`
	Reason  string `json:"reason,omitempty"`
}

// soaNode hosts one server + sOA behind a TCP endpoint.
type soaNode struct {
	name   string
	node   *agent.TCPNode
	mu     sync.Mutex
	server *cluster.Server
	soa    *core.SOA
	clock  func() time.Time
}

func startSOANode(name string, util float64, clock func() time.Time) *soaNode {
	hw := machine.DefaultConfig()
	server := cluster.NewServer(name, hw, 0)
	for c := 0; c < hw.Cores; c++ {
		server.SetCoreUtil(c, util)
	}
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), hw.Cores, clock())
	soa := core.NewSOA(core.DefaultSOAConfig(), server, budgets, 500, clock())

	tcp, err := agent.NewTCPNode(name, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	n := &soaNode{name: name, node: tcp, server: server, soa: soa, clock: clock}

	tcp.Register(name, func(m agent.Message) {
		n.mu.Lock()
		defer n.mu.Unlock()
		switch m.Type {
		case "goa.budget":
			b, err := agent.Decode[budgetAssignment](m)
			if err != nil {
				return
			}
			n.soa.SetStaticBudget(b.Watts, true)
			fmt.Printf("  [%s] received budget assignment: %.0f W\n", name, b.Watts)
		case "oc.request":
			req, err := agent.Decode[ocRequest](m)
			if err != nil {
				return
			}
			n.node.AddPeer(m.From, req.ReplyAddr)
			d := n.soa.Request(n.clock(), core.Request{
				VM: req.VM, Cores: req.Cores,
				TargetMHz: n.server.MaxOCMHz(), Priority: core.PriorityMetric,
			})
			resp, _ := agent.NewMessage("oc.decision", name, m.From,
				ocDecision{VM: req.VM, Granted: d.Granted, Reason: string(d.Reason)})
			_ = n.node.Send(resp)
		}
	})
	return n
}

func (n *soaNode) report(goaAddr string) {
	n.mu.Lock()
	body := profileReport{
		Server:     n.name,
		PowerWatts: n.server.Power(),
		OCCores:    float64(n.soa.ActiveOCCores()),
		CoreCost:   n.server.Machine().Config().OCCoreCost(),
	}
	n.mu.Unlock()
	n.node.AddPeer("goa", goaAddr)
	msg, _ := agent.NewMessage("soa.profile", n.name, "goa", body)
	if err := n.node.Send(msg); err != nil {
		log.Printf("%s: report failed: %v", n.name, err)
	}
}

func main() {
	log.SetFlags(0)
	simNow := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return simNow }

	// The gOA endpoint.
	goaNode, err := agent.NewTCPNode("goa-host", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer goaNode.Close()
	goa := core.NewGOA("rack-1", 1300)
	var goaMu sync.Mutex
	profiles := make(chan string, 8)
	goaNode.Register("goa", func(m agent.Message) {
		if m.Type != "soa.profile" {
			return
		}
		p, err := agent.Decode[profileReport](m)
		if err != nil {
			return
		}
		goaMu.Lock()
		// Demand skew: server-y declared twice the overclock need.
		requested := 5.0
		if p.Server == "server-y" {
			requested = 10
		}
		goa.SetProfile(p.Server, core.ServerProfile{
			Power: timeseries.FlatWeek(p.PowerWatts, time.Hour),
			OC: &predict.OCTemplate{
				Requested: timeseries.FlatWeek(requested, time.Hour),
				Granted:   timeseries.FlatWeek(p.OCCores, time.Hour),
			},
			OCCoreCost: p.CoreCost,
		})
		goaMu.Unlock()
		profiles <- p.Server
		fmt.Printf("[gOA] profile from %s: %.0f W\n", p.Server, p.PowerWatts)
	})

	// Two sOA endpoints.
	x := startSOANode("server-x", 0.55, clock)
	defer x.node.Close()
	y := startSOANode("server-y", 0.40, clock)
	defer y.node.Close()

	// 1. sOAs report their profiles to the gOA over TCP.
	x.report(goaNode.Addr())
	y.report(goaNode.Addr())
	for i := 0; i < 2; i++ {
		select {
		case <-profiles:
		case <-time.After(5 * time.Second):
			log.Fatal("timed out waiting for profiles")
		}
	}

	// 2. The gOA computes heterogeneous budgets and pushes them back.
	goaMu.Lock()
	budgets := goa.BudgetsAt(simNow)
	goaMu.Unlock()
	for _, n := range []*soaNode{x, y} {
		goaNode.AddPeer(n.name, n.node.Addr())
		msg, _ := agent.NewMessage("goa.budget", "goa", n.name,
			budgetAssignment{Server: n.name, Watts: budgets[n.name]})
		if err := goaNode.Send(msg); err != nil {
			log.Fatal(err)
		}
	}

	// 3. A workload client asks server-y to overclock 10 cores, over TCP.
	client, err := agent.NewTCPNode("wi-client", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	decisions := make(chan ocDecision, 1)
	client.Register("wi", func(m agent.Message) {
		if m.Type != "oc.decision" {
			return
		}
		if d, err := agent.Decode[ocDecision](m); err == nil {
			decisions <- d
		}
	})
	client.AddPeer("server-y", y.node.Addr())
	// Give server-y a moment to apply its budget before requesting.
	time.Sleep(200 * time.Millisecond)
	req, _ := agent.NewMessage("oc.request", "wi", "server-y",
		ocRequest{VM: "conf-42", Cores: 10, ReplyAddr: client.Addr()})
	if err := client.Send(req); err != nil {
		log.Fatal(err)
	}
	select {
	case d := <-decisions:
		fmt.Printf("[WI] overclock decision for %s: granted=%v %s\n", d.VM, d.Granted, d.Reason)
	case <-time.After(5 * time.Second):
		log.Fatal("timed out waiting for a decision")
	}
	y.mu.Lock()
	fmt.Printf("[server-y] overclocked cores now: %d, draw %.0f W\n",
		y.soa.ActiveOCCores(), y.server.Power())
	y.mu.Unlock()
}
