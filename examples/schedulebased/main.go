// Schedulebased: a rack of servers with schedule-based overclocking
// reservations and heterogeneous power budgets from the Global Overclocking
// Agent. Two servers declare different 9-10 AM overclocking needs; the gOA
// splits the rack headroom in proportion (the paper's §IV-C worked
// example, live).
//
//	go run ./examples/schedulebased
package main

import (
	"fmt"
	"log"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/predict"
	"smartoclock/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2023, 4, 10, 8, 0, 0, 0, time.UTC) // Monday 8:00
	hw := machine.DefaultConfig()

	serverX := cluster.NewServer("server-x", hw, 0)
	serverY := cluster.NewServer("server-y", hw, 0)
	for c := 0; c < hw.Cores; c++ {
		serverX.SetCoreUtil(c, 0.55)
		serverY.SetCoreUtil(c, 0.40)
	}

	// The gOA knows each server's power template and overclock template
	// (normally shipped weekly by the sOAs): X typically needs 5
	// overclocked cores at 9 AM, Y needs 10.
	rackLimit := 1300.0
	goa := core.NewGOA("rack-demo", rackLimit)
	ocCost := hw.OCCoreCost()
	mkOC := func(cores float64) *predict.OCTemplate {
		slots := make([]float64, 24)
		slots[9] = cores
		day := &timeseries.DayTemplate{Step: time.Hour, Slots: slots}
		return &predict.OCTemplate{
			Requested: &timeseries.WeekTemplate{Weekday: day, Weekend: day},
			Granted:   timeseries.FlatWeek(0, time.Hour),
		}
	}
	goa.SetProfile("server-x", core.ServerProfile{
		Power: timeseries.FlatWeek(400, time.Hour), OC: mkOC(5), OCCoreCost: ocCost,
	})
	goa.SetProfile("server-y", core.ServerProfile{
		Power: timeseries.FlatWeek(300, time.Hour), OC: mkOC(10), OCCoreCost: ocCost,
	})

	nineAM := start.Add(time.Hour)
	budgets := goa.BudgetsAt(nineAM)
	fmt.Printf("rack limit %.0f W; heterogeneous budgets at 9 AM: X=%.0f W, Y=%.0f W\n",
		rackLimit, budgets["server-x"], budgets["server-y"])

	// Each sOA receives its budget template and admits a 9-10 AM window
	// reservation ahead of time (at 8:00) — the paper's predictable
	// overclocking experience for schedule-based workloads.
	window := core.ScheduleWindow{StartHour: 9, EndHour: 10, WeekdaysOnly: true}
	tpl := goa.BudgetTemplates(time.Hour)
	for _, s := range []*cluster.Server{serverX, serverY} {
		cb := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), hw.Cores, start)
		soa := core.NewSOA(core.DefaultSOAConfig(), s, cb, rackLimit/2, start)
		soa.SetAssignedBudget(tpl[s.Name()])
		soa.SetPowerTemplate(timeseries.FlatWeek(s.Power(), time.Hour))

		cores := 5
		if s.Name() == "server-y" {
			cores = 10
		}
		d, res := soa.ReserveWindow(start, nineAM, time.Hour, core.Request{
			VM: "batch-" + s.Name(), Cores: cores, TargetMHz: hw.MaxOCMHz,
			Priority: core.PriorityScheduled,
		})
		fmt.Printf("%s: 9-10AM reservation for %d cores at 8:00: granted=%v (window active at 9:30: %v)\n",
			s.Name(), cores, d.Granted, window.Contains(nineAM.Add(30*time.Minute)))
		if !d.Granted {
			continue
		}
		reserved := cb.Core(res.Cores[0]).Reserved()
		fmt.Printf("%s: core %d holds %v of reserved overclock budget; honorable=%v\n",
			s.Name(), res.Cores[0], reserved, soa.HonorCheck(res))

		// 9:00 arrives: the window opens without re-admission.
		sd := soa.StartReserved(nineAM, res)
		fmt.Printf("%s: window opened, session granted=%v, draw %.0f W within budget %.0f W\n",
			s.Name(), sd.Granted, s.Power(), soa.BudgetAt(nineAM))
	}
}
