// Microservices: a latency-critical SocialNet-style deployment driven by
// bursty load, managed end to end by SmartOClock — metric-triggered
// overclocking with scale-out as the fallback when overclocking is
// rejected.
//
//	go run ./examples/microservices
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
	"smartoclock/internal/workload"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(7))
	hw := machine.DefaultConfig()

	server := cluster.NewServer("sn-0", hw, 0)
	svc, _ := workload.FindService("ComposePost")
	vm, err := cluster.PlaceVM(server, "compose-0", 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	inst := workload.NewInstance(svc)

	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), hw.Cores, start)
	soa := core.NewSOA(core.DefaultSOAConfig(), server, budgets, 700, start)

	// The Global Workload Intelligence agent: overclock at 80% of the SLO,
	// release at 50%, scale out if the tail stays above 105%. A Local WI
	// agent inside the VM aggregates per-tick latencies over 5-second
	// windows and reports them upstream, like a conventional autoscaling
	// sidecar.
	mp := core.DefaultMetricPolicy()
	wi := core.NewGlobalWI(svc.SLOms(), &mp, nil, core.DefaultScaleOutConfig())
	local := core.NewLocalWI("compose-0", 5*time.Second, wi.Observe)
	soa.OnReject = func(vmName string, reason core.RejectReason) {
		wi.ReportRejection(vmName, reason)
		fmt.Printf("%s  rejection (%s) -> corrective scale-out pending\n", vmName, reason)
	}

	// Bursty load: medium base with 2x spikes.
	gen := &workload.LoadGen{
		BaseRPS:     workload.MediumLoad.RPS(svc, hw.TurboMHz),
		BurstProb:   0.01,
		BurstFactor: 1.35,
		BurstLen:    20,
		NoiseSD:     0.05,
	}

	fmt.Printf("service %s: SLO %.1f ms, capacity %.0f rps at turbo\n\n",
		svc.Name, svc.SLOms(), svc.CapacityRPS(hw.TurboMHz, hw.TurboMHz))
	fmt.Println("time    rps   p99(ms)  freq(MHz)  oc  note")

	now := start
	for i := 0; i < 300; i++ {
		now = now.Add(time.Second)
		rps := gen.RPSAt(now, rng)
		res := inst.Step(time.Second, rps, vm.Freq(), hw.TurboMHz, rng)
		vm.SetUtil(res.Util)

		local.RecordLatency(res.P99MS)
		local.RecordUtil(res.Util)
		local.Tick(now)
		dir := wi.Decide(now)
		_, active := soa.Sessions()["compose-0"]
		note := ""
		if dir.Overclock["compose-0"] && !active {
			d := soa.Request(now, core.Request{
				VM: "compose-0", Cores: len(vm.Cores), TargetMHz: hw.MaxOCMHz,
				Priority: core.PriorityMetric, PreferredCores: vm.Cores,
			})
			if d.Granted {
				note = "overclock engaged"
			}
		} else if !dir.Overclock["compose-0"] && active {
			soa.Stop(now, "compose-0")
			note = "overclock released"
		}
		if dir.Instances > 1 {
			note += " scale-out requested"
		}
		soa.Tick(now)
		server.Advance(time.Second)

		if i%20 == 0 || note != "" {
			fmt.Printf("%s  %4.0f  %7.2f  %9d  %2d  %s\n",
				now.Format("15:04:05"), rps, res.P99MS, vm.Freq(), soa.ActiveOCCores(), note)
		}
	}
	fmt.Printf("\nsummary: %d grants, %d rejections, %v overclock time consumed on core %d\n",
		soa.Granted(), soa.Rejected(),
		(budgets.Core(vm.Cores[0]).Config().Allowance() - budgets.Core(vm.Cores[0]).Remaining()).Round(time.Second),
		vm.Cores[0])
}
