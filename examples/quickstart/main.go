// Quickstart: build one simulated server, attach a Server Overclocking
// Agent, request overclocking for a VM and watch admission control, the
// feedback loop and budget accounting at work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"smartoclock/internal/cluster"
	"smartoclock/internal/core"
	"smartoclock/internal/lifetime"
	"smartoclock/internal/machine"
)

func main() {
	log.SetFlags(0)
	start := time.Date(2023, 4, 10, 9, 0, 0, 0, time.UTC)

	// A 64-core server with 3.3 GHz turbo and 4.0 GHz maximum overclock.
	hw := machine.DefaultConfig()
	server := cluster.NewServer("demo-server", hw, 0)

	// A VM occupying 8 cores at 70% utilization.
	vm, err := cluster.PlaceVM(server, "web-frontend", 8, 0)
	if err != nil {
		log.Fatal(err)
	}
	vm.SetUtil(0.7)

	// Per-core overclocking time budgets: 10% of each week, the paper's
	// running example for lifetime compliance.
	budgets := lifetime.NewCoreBudgets(lifetime.DefaultBudgetConfig(), hw.Cores, start)

	// The Server Overclocking Agent with a 600 W power budget (e.g. the
	// even share of a rack limit).
	soa := core.NewSOA(core.DefaultSOAConfig(), server, budgets, 600, start)
	soa.OnReject = func(vmName string, reason core.RejectReason) {
		fmt.Printf("  [WI] overclocking rejected for %s: %s\n", vmName, reason)
	}

	fmt.Printf("Server power before overclocking: %.0f W (budget 600 W)\n", server.Power())

	// The workload's latency approaches its SLO: the Workload Intelligence
	// layer requests overclocking for the VM's own cores.
	decision := soa.Request(start, core.Request{
		VM:             "web-frontend",
		Cores:          len(vm.Cores),
		TargetMHz:      hw.MaxOCMHz,
		Priority:       core.PriorityMetric,
		PreferredCores: vm.Cores,
	})
	if !decision.Granted {
		log.Fatalf("request rejected: %s", decision.Reason)
	}
	fmt.Printf("Granted: VM overclocked on cores %v\n", decision.Cores)
	fmt.Printf("VM frequency: %d MHz, server power: %.0f W\n", vm.Freq(), server.Power())

	// Run the control loop for a simulated minute: the sOA enforces its
	// budget, charges the per-core overclock time and tracks wear.
	now := start
	for i := 0; i < 60; i++ {
		now = now.Add(time.Second)
		soa.Tick(now)
		server.Advance(time.Second)
	}
	fmt.Printf("After 1 min: overclocked cores %d, budget left on core %d: %v\n",
		soa.ActiveOCCores(), vm.Cores[0], budgets.Core(vm.Cores[0]).Remaining().Round(time.Minute))
	fmt.Printf("Aging on overclocked core 0: %.1fs of reference wear in 60s of wall time\n",
		server.CoreWear(0).Aged().Seconds())

	// Load subsides: stop the session; cores return to turbo.
	soa.Stop(now, "web-frontend")
	fmt.Printf("Stopped: VM frequency back to %d MHz, power %.0f W\n", vm.Freq(), server.Power())
}
