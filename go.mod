module smartoclock

go 1.22
